"""SQLite-backed, content-addressed store for canonical run reports.

One row per scenario cache key (:meth:`Scenario.cache_key
<repro.runner.scenario.Scenario.cache_key>`): the canonical report JSON
plus denormalized query columns (algorithm, topology, adversary, fault
model, seed, size, outcome). Because the runner's determinism contract
makes the canonical report a pure function of the scenario, the key is a
valid content address — two writers can only ever race to insert the
same bytes, so concurrent ``put_many`` from multiple processes needs
nothing beyond SQLite's own locking (WAL journal, ``INSERT OR IGNORE``,
a generous busy timeout).

The store is safe to share across the service's handler and worker
threads (one internal lock serializes access to the single connection)
and across processes (each process opens its own :class:`ResultStore` on
the same path).
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
from typing import Any, Iterable, Iterator, NamedTuple, Optional

from repro.runner.report import RunReport

__all__ = ["ResultStore", "StoreRow", "ORDERABLE_COLUMNS", "STORE_SCHEMA_VERSION"]

#: bump on incompatible table changes; opening a mismatched store raises
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reports (
    cache_key      TEXT PRIMARY KEY,
    algorithm      TEXT NOT NULL,
    topology       TEXT NOT NULL,
    adversary      TEXT NOT NULL,
    fault_model    TEXT NOT NULL,
    fault_p        REAL NOT NULL,
    seed           INTEGER NOT NULL,
    network_n      INTEGER NOT NULL,
    success        INTEGER NOT NULL,
    rounds         INTEGER NOT NULL,
    wall_time_s    REAL NOT NULL,
    canonical_json TEXT NOT NULL,
    created_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_reports_algorithm ON reports (algorithm);
CREATE INDEX IF NOT EXISTS idx_reports_topology  ON reports (topology);
CREATE INDEX IF NOT EXISTS idx_reports_adversary ON reports (adversary);
CREATE INDEX IF NOT EXISTS idx_reports_seed      ON reports (seed);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: deterministic result order for query()/export_json()
_QUERY_ORDER = "ORDER BY algorithm, topology, network_n, seed, cache_key"

#: columns query(order_by=...) accepts; every ordering is made total by a
#: trailing cache_key tiebreak
ORDERABLE_COLUMNS = (
    "algorithm",
    "topology",
    "adversary",
    "fault_model",
    "fault_p",
    "seed",
    "network_n",
    "success",
    "rounds",
    "wall_time_s",
    "created_at",
    "cache_key",
)


class StoreRow(NamedTuple):
    """One denormalized store row, as streamed by :meth:`ResultStore.iter_rows`.

    These are the indexed query columns only — no canonical JSON, no
    parsing — which is what lets streaming aggregation touch hundreds of
    thousands of rows per second.
    """

    cache_key: str
    algorithm: str
    topology: str
    adversary: str
    fault_model: str
    fault_p: float
    seed: int
    network_n: int
    success: bool
    rounds: int
    wall_time_s: float


_ROW_SELECT = (
    "SELECT cache_key, algorithm, topology, adversary, fault_model, "
    "fault_p, seed, network_n, success, rounds, wall_time_s FROM reports"
)


class ResultStore:
    """A content-addressed result store on one SQLite database file.

    Parameters
    ----------
    path:
        Database file (created on first open). ``":memory:"`` works for
        single-process, single-store use.
    timeout:
        SQLite busy timeout in seconds — how long a writer waits on a
        concurrent writer's transaction before giving up.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            with self._lock, self._connection as connection:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                connection.executescript(_SCHEMA)
                row = connection.execute(
                    "SELECT value FROM store_meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is None:
                    connection.execute(
                        "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(STORE_SCHEMA_VERSION)),
                    )
                elif int(row[0]) != STORE_SCHEMA_VERSION:
                    raise ValueError(
                        f"store {self.path!r} has schema version {row[0]}, "
                        f"this library writes version {STORE_SCHEMA_VERSION}"
                    )
        except Exception:
            self._connection.close()
            raise

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writes -------------------------------------------------------------

    def put(self, report: RunReport, replace: bool = False) -> int:
        """Store one report under its cache key; see :meth:`put_many`."""
        return self.put_many([report], replace=replace)

    def put_many(
        self, reports: Iterable[RunReport], replace: bool = False
    ) -> int:
        """Batch-insert reports in one transaction; returns rows written.

        Every report must carry a non-empty ``cache_key`` (reports of
        explicit-network scenarios are not content-addressable). Existing
        keys are left untouched — the stored bytes are already the
        canonical answer — unless ``replace`` is true.
        """
        now = time.time()
        rows = []
        for report in reports:
            if not report.cache_key:
                raise ValueError(
                    "report has no cache_key (explicit-network scenarios "
                    "are not content-addressable)"
                )
            scenario = report.scenario
            faults = scenario.get("faults", {})
            adversary = scenario.get("adversary")
            rows.append(
                (
                    report.cache_key,
                    report.algorithm,
                    str(scenario.get("topology", "")),
                    adversary["kind"] if adversary else "",
                    str(faults.get("model", "none")),
                    float(faults.get("p", 0.0)),
                    int(scenario.get("seed", 0)),
                    report.network_n,
                    int(report.success),
                    report.rounds,
                    report.wall_time_s,
                    report.to_json(canonical=True),
                    now,
                )
            )
        if not rows:
            return 0
        conflict = "REPLACE" if replace else "IGNORE"
        with self._lock, self._connection as connection:
            before = connection.total_changes
            connection.executemany(
                f"INSERT OR {conflict} INTO reports VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            return connection.total_changes - before

    # -- reads --------------------------------------------------------------

    def get(self, cache_key: str) -> Optional[RunReport]:
        """The stored report for ``cache_key`` (None when absent).

        The returned report renders byte-identically to the run that was
        stored: ``report.to_json(canonical=True)`` equals the stored
        canonical JSON exactly. ``wall_time_s`` is the original run's
        (timing is outside the canonical form).
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT canonical_json, wall_time_s FROM reports "
                "WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()
        if row is None:
            return None
        return self._report_from_row(row[0], row[1])

    def get_json(self, cache_key: str) -> Optional[str]:
        """The stored canonical JSON text itself (None when absent)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT canonical_json FROM reports WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()
        return None if row is None else row[0]

    def __contains__(self, cache_key: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM reports WHERE cache_key = ?", (cache_key,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM reports"
            ).fetchone()[0]

    def keys(self) -> list[str]:
        """Every stored cache key, in deterministic (sorted) order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT cache_key FROM reports ORDER BY cache_key"
            ).fetchall()
        return [row[0] for row in rows]

    def query(
        self,
        algorithm: Optional[str] = None,
        topology: Optional[str] = None,
        adversary: Optional[str] = None,
        fault_model: Optional[str] = None,
        seed_min: Optional[int] = None,
        seed_max: Optional[int] = None,
        success: Optional[bool] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        order_by: Optional[str] = None,
    ) -> list[RunReport]:
        """Reports matching every given filter, in deterministic order.

        ``adversary`` filters on the adversary kind; pass ``"none"`` (or
        ``""``) to match runs without one. ``seed_min``/``seed_max`` are
        an inclusive range. ``None`` filters are inactive.

        ``order_by`` names one of :data:`ORDERABLE_COLUMNS` (default: the
        canonical algorithm/topology/n/seed order); every ordering gets a
        ``cache_key`` tiebreak, so it is total and ``limit``/``offset``
        paginate without duplicating or dropping rows between pages.
        """
        where, values = self._where(
            algorithm, topology, adversary, fault_model,
            seed_min, seed_max, success,
        )
        sql = (
            "SELECT canonical_json, wall_time_s FROM reports "
            f"{where} {self._order(order_by)}"
        )
        sql, values = self._paginate(sql, values, limit, offset)
        with self._lock:
            rows = self._connection.execute(sql, values).fetchall()
        return [self._report_from_row(text, wall) for text, wall in rows]

    def count(
        self,
        algorithm: Optional[str] = None,
        topology: Optional[str] = None,
        adversary: Optional[str] = None,
        fault_model: Optional[str] = None,
        seed_min: Optional[int] = None,
        seed_max: Optional[int] = None,
        success: Optional[bool] = None,
    ) -> int:
        """How many reports match the filters (see :meth:`query`)."""
        where, values = self._where(
            algorithm, topology, adversary, fault_model,
            seed_min, seed_max, success,
        )
        with self._lock:
            return self._connection.execute(
                f"SELECT COUNT(*) FROM reports {where}", values
            ).fetchone()[0]

    def stats(self) -> dict[str, Any]:
        """A summary of the store: totals and per-dimension breakdowns."""
        with self._lock:
            connection = self._connection
            total = connection.execute("SELECT COUNT(*) FROM reports").fetchone()[0]
            breakdown = {}
            for column in ("algorithm", "topology", "adversary"):
                rows = connection.execute(
                    f"SELECT {column}, COUNT(*) FROM reports "
                    f"GROUP BY {column} ORDER BY {column}"
                ).fetchall()
                breakdown[column] = {name or "none": count for name, count in rows}
            wall = connection.execute(
                "SELECT COALESCE(SUM(wall_time_s), 0.0) FROM reports"
            ).fetchone()[0]
        return {
            "path": self.path,
            "schema_version": STORE_SCHEMA_VERSION,
            "reports": total,
            "by_algorithm": breakdown["algorithm"],
            "by_topology": breakdown["topology"],
            "by_adversary": breakdown["adversary"],
            "stored_wall_time_s": wall,
        }

    # -- streaming ----------------------------------------------------------

    def iter_rows(
        self, batch_size: int = 4096, **filters: Any
    ) -> Iterator[StoreRow]:
        """Stream denormalized :class:`StoreRow` tuples, never the JSON.

        Rows come back in the same deterministic order as :meth:`query`
        (honoring ``order_by``) but are fetched ``batch_size`` at a time
        from one cursor, so aggregating a million-row store holds one
        batch in memory — this is the fast path streaming aggregation is
        built on.
        """
        order_by = filters.pop("order_by", None)
        where, values = self._where_from_filters(filters)
        sql = f"{_ROW_SELECT} {where} {self._order(order_by)}"
        for batch in self._iter_batches(sql, values, batch_size):
            for row in batch:
                yield StoreRow(
                    cache_key=row[0],
                    algorithm=row[1],
                    topology=row[2],
                    adversary=row[3],
                    fault_model=row[4],
                    fault_p=row[5],
                    seed=row[6],
                    network_n=row[7],
                    success=bool(row[8]),
                    rounds=row[9],
                    wall_time_s=row[10],
                )

    def iter_reports(
        self, batch_size: int = 512, **filters: Any
    ) -> Iterator[RunReport]:
        """Stream full :class:`RunReport` records in :meth:`query` order.

        Like :meth:`query` but chunked: only ``batch_size`` canonical
        JSON blobs are resident at a time, which keeps exports of large
        stores flat in memory.
        """
        order_by = filters.pop("order_by", None)
        where, values = self._where_from_filters(filters)
        sql = (
            "SELECT canonical_json, wall_time_s FROM reports "
            f"{where} {self._order(order_by)}"
        )
        for batch in self._iter_batches(sql, values, batch_size):
            for text, wall in batch:
                yield self._report_from_row(text, wall)

    def _iter_batches(
        self, sql: str, values: list[Any], batch_size: int
    ) -> Iterator[list]:
        """fetchmany batches from a dedicated cursor, lock held per batch."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        with self._lock:
            cursor = self._connection.execute(sql, values)
        try:
            while True:
                with self._lock:
                    batch = cursor.fetchmany(batch_size)
                if not batch:
                    return
                yield batch
        finally:
            cursor.close()

    # -- export -------------------------------------------------------------

    def export_json(self, path: str, batch_size: int = 512, **filters: Any) -> int:
        """Write matching reports (see :meth:`query`) as a JSON array.

        The array holds full report dicts (timing included), the same
        shape ``repro sweep --format json`` emits; returns the number of
        reports written. Reports are streamed ``batch_size`` at a time
        (:meth:`iter_reports`), so exporting never materializes the whole
        store; the bytes are identical to a one-shot ``json.dump`` of the
        full list.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for report in self.iter_reports(batch_size=batch_size, **filters):
                handle.write("[\n" if written == 0 else ",\n")
                text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
                handle.write(
                    "\n".join("  " + line for line in text.splitlines())
                )
                written += 1
            handle.write("[]\n" if written == 0 else "\n]\n")
        return written

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _order(order_by: Optional[str]) -> str:
        if order_by is None:
            return _QUERY_ORDER
        if order_by not in ORDERABLE_COLUMNS:
            raise ValueError(
                f"unknown order_by column {order_by!r}; "
                f"allowed: {', '.join(ORDERABLE_COLUMNS)}"
            )
        if order_by == "cache_key":
            return "ORDER BY cache_key"
        return f"ORDER BY {order_by}, cache_key"

    @staticmethod
    def _paginate(
        sql: str,
        values: list[Any],
        limit: Optional[int],
        offset: Optional[int],
    ) -> tuple[str, list[Any]]:
        if offset is not None and offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None:
            sql += " LIMIT ?"
            values.append(int(limit))
        elif offset is not None:
            # SQLite requires a LIMIT clause before OFFSET; -1 = unbounded
            sql += " LIMIT -1"
        if offset is not None:
            sql += " OFFSET ?"
            values.append(int(offset))
        return sql, values

    def _where_from_filters(self, filters: dict[str, Any]) -> tuple[str, list[Any]]:
        unknown = set(filters) - {
            "algorithm", "topology", "adversary", "fault_model",
            "seed_min", "seed_max", "success",
        }
        if unknown:
            raise TypeError(f"unknown filters {sorted(unknown)}")
        return self._where(
            filters.get("algorithm"),
            filters.get("topology"),
            filters.get("adversary"),
            filters.get("fault_model"),
            filters.get("seed_min"),
            filters.get("seed_max"),
            filters.get("success"),
        )

    @staticmethod
    def _report_from_row(canonical_json: str, wall_time_s: float) -> RunReport:
        report = RunReport.from_dict(json.loads(canonical_json))
        return dataclasses.replace(report, wall_time_s=wall_time_s)

    @staticmethod
    def _where(
        algorithm: Optional[str],
        topology: Optional[str],
        adversary: Optional[str],
        fault_model: Optional[str],
        seed_min: Optional[int],
        seed_max: Optional[int],
        success: Optional[bool],
    ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        values: list[Any] = []
        for column, value in (
            ("algorithm", algorithm),
            ("topology", topology),
            ("fault_model", fault_model),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                values.append(value)
        if adversary is not None:
            clauses.append("adversary = ?")
            values.append("" if adversary == "none" else adversary)
        if seed_min is not None:
            clauses.append("seed >= ?")
            values.append(int(seed_min))
        if seed_max is not None:
            clauses.append("seed <= ?")
            values.append(int(seed_max))
        if success is not None:
            clauses.append("success = ?")
            values.append(int(bool(success)))
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, values
