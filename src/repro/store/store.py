"""Content-addressed store for canonical run reports, over any backend.

One row per scenario cache key (:meth:`Scenario.cache_key
<repro.runner.scenario.Scenario.cache_key>`): the canonical report JSON
plus denormalized query columns (algorithm, topology, adversary, fault
model, seed, size, outcome). Because the runner's determinism contract
makes the canonical report a pure function of the scenario, the key is a
valid content address — two writers can only ever race to insert the
same bytes, so concurrent ``put_many`` from multiple processes needs
nothing beyond the engine's own locking.

:class:`ResultStore` is the report-shaped API; the actual storage engine
is a pluggable :class:`~repro.store.backend.StoreBackend` — one SQLite
file by default, or a sharded directory of them (``shards=N``, or any
path that already is a shard directory). Every engine produces the same
deterministic orderings, so the choice changes throughput, never bytes.

The store is safe to share across the service's handler and worker
threads and across processes (each process opens its own
:class:`ResultStore` on the same path).
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Iterable, Iterator, NamedTuple, Optional

from repro.runner.report import RunReport
from repro.store.backend import STORE_SCHEMA_VERSION, StoreBackend, open_backend
from repro.telemetry.metrics import METRICS as _METRICS
from repro.timeline.artifact import Timeline

__all__ = ["ResultStore", "StoreRow", "ORDERABLE_COLUMNS", "STORE_SCHEMA_VERSION"]

_M_PUT_SECONDS = _METRICS.histogram(
    "repro_store_put_seconds", "put_many backend-insert latency"
)
_M_PUT_ROWS = _METRICS.counter(
    "repro_store_put_rows_total", "rows actually written by put_many"
)
_M_PUT_OFFERED = _METRICS.counter(
    "repro_store_put_offered_total", "reports offered to put_many"
)
_M_QUERY_SECONDS = _METRICS.histogram(
    "repro_store_query_seconds", "query() latency including row decode"
)
_M_QUERIES = _METRICS.counter("repro_store_queries_total", "query() calls")
_M_GETS = _METRICS.counter("repro_store_gets_total", "get() lookups")
_M_GET_HITS = _METRICS.counter("repro_store_get_hits_total", "get() hits")

#: deterministic result order for query()/export_json()
_DEFAULT_ORDER = ("algorithm", "topology", "network_n", "seed", "cache_key")

#: columns query(order_by=...) accepts; every ordering is made total by a
#: trailing cache_key tiebreak
ORDERABLE_COLUMNS = (
    "algorithm",
    "topology",
    "adversary",
    "fault_model",
    "fault_p",
    "seed",
    "network_n",
    "success",
    "rounds",
    "wall_time_s",
    "created_at",
    "cache_key",
)


class StoreRow(NamedTuple):
    """One denormalized store row, as streamed by :meth:`ResultStore.iter_rows`.

    These are the indexed query columns only — no canonical JSON, no
    parsing — which is what lets streaming aggregation touch hundreds of
    thousands of rows per second.
    """

    cache_key: str
    algorithm: str
    topology: str
    adversary: str
    fault_model: str
    fault_p: float
    seed: int
    network_n: int
    success: bool
    rounds: int
    wall_time_s: float


class ResultStore:
    """A content-addressed result store over a pluggable backend.

    Parameters
    ----------
    path:
        Database file (created on first open), or a shard directory.
        ``":memory:"`` works for single-process, single-store use.
    timeout:
        SQLite busy timeout in seconds — how long a writer waits on a
        concurrent writer's transaction before giving up.
    shards:
        ``> 1`` creates (or opens) a sharded store at ``path``; ``None``
        auto-detects (a directory opens sharded, a file single).
    """

    def __init__(
        self,
        path: str,
        timeout: float = 30.0,
        shards: Optional[int] = None,
    ) -> None:
        self.path = str(path)
        self.backend: StoreBackend = open_backend(
            self.path, timeout=timeout, shards=shards
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writes -------------------------------------------------------------

    def put(self, report: RunReport, replace: bool = False) -> int:
        """Store one report under its cache key; see :meth:`put_many`."""
        return self.put_many([report], replace=replace)

    def put_many(
        self, reports: Iterable[RunReport], replace: bool = False
    ) -> int:
        """Batch-insert reports in one transaction; returns rows written.

        Every report must carry a non-empty ``cache_key`` (reports of
        explicit-network scenarios are not content-addressable). Existing
        keys are left untouched — the stored bytes are already the
        canonical answer — unless ``replace`` is true.

        Reports carrying a flight-recorder payload (``report.timeline``)
        also write a timeline sidecar under the same cache key; sidecars
        are content-addressed like reports, so a duplicate offer is one
        ignored insert.
        """
        now = time.time()
        rows = []
        timeline_rows = []
        for report in reports:
            if not report.cache_key:
                raise ValueError(
                    "report has no cache_key (explicit-network scenarios "
                    "are not content-addressable)"
                )
            scenario = report.scenario
            faults = scenario.get("faults", {})
            adversary = scenario.get("adversary")
            rows.append(
                (
                    report.cache_key,
                    report.algorithm,
                    str(scenario.get("topology", "")),
                    adversary["kind"] if adversary else "",
                    str(faults.get("model", "none")),
                    float(faults.get("p", 0.0)),
                    int(scenario.get("seed", 0)),
                    report.network_n,
                    int(report.success),
                    report.rounds,
                    report.wall_time_s,
                    report.to_json(canonical=True),
                    now,
                )
            )
            if report.timeline is not None:
                timeline = Timeline.from_dict(report.timeline)
                timeline_rows.append(
                    (
                        report.cache_key,
                        timeline.cache_key(),
                        timeline.to_json(),
                        now,
                    )
                )
        if not rows:
            return 0
        if not _METRICS.enabled:
            written = self.backend.insert_rows(rows, replace)
            if timeline_rows:
                self.backend.timeline_put(timeline_rows)
            return written
        _M_PUT_OFFERED.inc(len(rows))
        start = time.perf_counter()
        written = self.backend.insert_rows(rows, replace)
        if timeline_rows:
            self.backend.timeline_put(timeline_rows)
        _M_PUT_SECONDS.observe(time.perf_counter() - start)
        if written:
            _M_PUT_ROWS.inc(written)
        return written

    # -- reads --------------------------------------------------------------

    def get(self, cache_key: str) -> Optional[RunReport]:
        """The stored report for ``cache_key`` (None when absent).

        The returned report renders byte-identically to the run that was
        stored: ``report.to_json(canonical=True)`` equals the stored
        canonical JSON exactly. ``wall_time_s`` is the original run's
        (timing is outside the canonical form). A stored timeline
        sidecar is re-attached as ``report.timeline``, so a cache hit
        returns exactly what the original run produced.
        """
        row = self.backend.fetch_payload(
            cache_key, ("canonical_json", "wall_time_s")
        )
        if _METRICS.enabled:
            _M_GETS.inc()
            if row is not None:
                _M_GET_HITS.inc()
        if row is None:
            return None
        report = self._report_from_row(row[0], row[1])
        sidecar = self.backend.timeline_fetch(cache_key)
        if sidecar is not None:
            report = dataclasses.replace(
                report, timeline=json.loads(sidecar[1])
            )
        return report

    def get_json(self, cache_key: str) -> Optional[str]:
        """The stored canonical JSON text itself (None when absent)."""
        row = self.backend.fetch_payload(cache_key, ("canonical_json",))
        return None if row is None else row[0]

    # -- timeline sidecars ---------------------------------------------------

    def get_timeline(self, cache_key: str) -> Optional[Timeline]:
        """The flight-recorder sidecar stored for a report's cache key."""
        sidecar = self.backend.timeline_fetch(cache_key)
        return None if sidecar is None else Timeline.from_json(sidecar[1])

    def get_timeline_json(self, cache_key: str) -> Optional[str]:
        """The stored canonical timeline JSON itself (None when absent).

        These are the exact bytes ``GET /timelines/<key>`` serves.
        """
        sidecar = self.backend.timeline_fetch(cache_key)
        return None if sidecar is None else sidecar[1]

    def timeline_count(self) -> int:
        """How many reports carry a timeline sidecar."""
        return self.backend.timeline_count()

    def __contains__(self, cache_key: str) -> bool:
        return self.backend.fetch_payload(cache_key, ("1",)) is not None

    def __len__(self) -> int:
        return self.backend.count_where("", [])

    def keys(self) -> list[str]:
        """Every stored cache key, in deterministic (sorted) order."""
        return [
            row[0]
            for row in self.backend.iter_select(
                ("cache_key",), "", [], ("cache_key",)
            )
        ]

    def query(
        self,
        algorithm: Optional[str] = None,
        topology: Optional[str] = None,
        adversary: Optional[str] = None,
        fault_model: Optional[str] = None,
        seed_min: Optional[int] = None,
        seed_max: Optional[int] = None,
        success: Optional[bool] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        order_by: Optional[str] = None,
    ) -> list[RunReport]:
        """Reports matching every given filter, in deterministic order.

        ``adversary`` filters on the adversary kind; pass ``"none"`` (or
        ``""``) to match runs without one. ``seed_min``/``seed_max`` are
        an inclusive range. ``None`` filters are inactive.

        ``order_by`` names one of :data:`ORDERABLE_COLUMNS` (default: the
        canonical algorithm/topology/n/seed order); every ordering gets a
        ``cache_key`` tiebreak, so it is total and ``limit``/``offset``
        paginate without duplicating or dropping rows between pages.
        """
        if offset is not None and offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        where, values = self._where(
            algorithm, topology, adversary, fault_model,
            seed_min, seed_max, success,
        )
        start = time.perf_counter() if _METRICS.enabled else 0.0
        reports = [
            self._report_from_row(text, wall)
            for text, wall in self.backend.iter_select(
                ("canonical_json", "wall_time_s"),
                where,
                values,
                self._order(order_by),
                limit=limit,
                offset=offset,
            )
        ]
        if _METRICS.enabled:
            _M_QUERIES.inc()
            _M_QUERY_SECONDS.observe(time.perf_counter() - start)
        return reports

    def count(
        self,
        algorithm: Optional[str] = None,
        topology: Optional[str] = None,
        adversary: Optional[str] = None,
        fault_model: Optional[str] = None,
        seed_min: Optional[int] = None,
        seed_max: Optional[int] = None,
        success: Optional[bool] = None,
    ) -> int:
        """How many reports match the filters (see :meth:`query`)."""
        where, values = self._where(
            algorithm, topology, adversary, fault_model,
            seed_min, seed_max, success,
        )
        return self.backend.count_where(where, values)

    def stats(self) -> dict[str, Any]:
        """A summary of the store: totals and per-dimension breakdowns.

        Beyond the per-dimension counts, ``backend``/``shards`` describe
        the engine and ``puts_attempted``/``dedup_ratio`` how much
        duplicate work the content addressing absorbed (farmed sweeps
        re-offering already-stored keys cost one ignored insert, not a
        recompute).
        """
        backend = self.backend
        total = backend.count_where("", [])
        breakdown = {
            column: {
                name or "none": count
                for name, count in backend.group_counts(column).items()
            }
            for column in ("algorithm", "topology", "adversary")
        }
        attempted = backend.attempted()
        return {
            "path": self.path,
            "schema_version": STORE_SCHEMA_VERSION,
            "backend": backend.kind,
            "shards": len(backend.shard_stats()),
            "reports": total,
            "by_algorithm": breakdown["algorithm"],
            "by_topology": breakdown["topology"],
            "by_adversary": breakdown["adversary"],
            "stored_wall_time_s": backend.sum_column("wall_time_s"),
            "timelines": backend.timeline_count(),
            "puts_attempted": attempted,
            "dedup_ratio": (
                round(1.0 - total / attempted, 4) if attempted else 0.0
            ),
            "journal_records": backend.journal_size(),
        }

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard row counts and put-attempt counters (one entry for
        single-file stores)."""
        return self.backend.shard_stats()

    # -- the farm journal ----------------------------------------------------
    #
    # The farm coordinator's durable state rides in the store (a small
    # ``farm_journal`` table; one journal per store, even sharded) so a
    # coordinator crash orphans nothing: :meth:`repro.farm.Coordinator
    # .recover` rebuilds the queue from these records plus the reports
    # table. These are thin pass-throughs; the record formats belong to
    # :mod:`repro.farm.coordinator`.

    def journal_append(self, records: list[tuple[str, str]]) -> None:
        """Append ``(kind, payload)`` journal records in one transaction."""
        self.backend.journal_append(records)

    def journal_records(self) -> list[tuple[int, str, str]]:
        """Every journal record as ``(seq, kind, payload)``, in seq order."""
        return self.backend.journal_records()

    def journal_replace(self, records: list[tuple[str, str]]) -> None:
        """Atomically replace the whole journal (compaction)."""
        self.backend.journal_replace(records)

    def journal_size(self) -> int:
        """How many records the journal holds (bounded by compaction)."""
        return self.backend.journal_size()

    # -- streaming ----------------------------------------------------------

    def iter_rows(
        self, batch_size: int = 4096, **filters: Any
    ) -> Iterator[StoreRow]:
        """Stream denormalized :class:`StoreRow` tuples, never the JSON.

        Rows come back in the same deterministic order as :meth:`query`
        (honoring ``order_by``) but are fetched ``batch_size`` at a time
        from one cursor, so aggregating a million-row store holds one
        batch in memory — this is the fast path streaming aggregation is
        built on.
        """
        order_by = filters.pop("order_by", None)
        where, values = self._where_from_filters(filters)
        for row in self.backend.iter_select(
            StoreRow._fields,
            where,
            values,
            self._order(order_by),
            batch_size=batch_size,
        ):
            yield StoreRow(*row[:8], bool(row[8]), row[9], row[10])

    def iter_reports(
        self, batch_size: int = 512, **filters: Any
    ) -> Iterator[RunReport]:
        """Stream full :class:`RunReport` records in :meth:`query` order.

        Like :meth:`query` but chunked: only ``batch_size`` canonical
        JSON blobs are resident at a time, which keeps exports of large
        stores flat in memory.
        """
        order_by = filters.pop("order_by", None)
        where, values = self._where_from_filters(filters)
        for text, wall in self.backend.iter_select(
            ("canonical_json", "wall_time_s"),
            where,
            values,
            self._order(order_by),
            batch_size=batch_size,
        ):
            yield self._report_from_row(text, wall)

    # -- export -------------------------------------------------------------

    def export_json(self, path: str, batch_size: int = 512, **filters: Any) -> int:
        """Write matching reports (see :meth:`query`) as a JSON array.

        The array holds full report dicts (timing included), the same
        shape ``repro sweep --format json`` emits; returns the number of
        reports written. Reports are streamed ``batch_size`` at a time
        (:meth:`iter_reports`), so exporting never materializes the whole
        store; the bytes are identical to a one-shot ``json.dump`` of the
        full list.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for report in self.iter_reports(batch_size=batch_size, **filters):
                handle.write("[\n" if written == 0 else ",\n")
                text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
                handle.write(
                    "\n".join("  " + line for line in text.splitlines())
                )
                written += 1
            handle.write("[]\n" if written == 0 else "\n]\n")
        return written

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _order(order_by: Optional[str]) -> tuple[str, ...]:
        if order_by is None:
            return _DEFAULT_ORDER
        if order_by not in ORDERABLE_COLUMNS:
            raise ValueError(
                f"unknown order_by column {order_by!r}; "
                f"allowed: {', '.join(ORDERABLE_COLUMNS)}"
            )
        if order_by == "cache_key":
            return ("cache_key",)
        return (order_by, "cache_key")

    def _where_from_filters(self, filters: dict[str, Any]) -> tuple[str, list[Any]]:
        unknown = set(filters) - {
            "algorithm", "topology", "adversary", "fault_model",
            "seed_min", "seed_max", "success",
        }
        if unknown:
            raise TypeError(f"unknown filters {sorted(unknown)}")
        return self._where(
            filters.get("algorithm"),
            filters.get("topology"),
            filters.get("adversary"),
            filters.get("fault_model"),
            filters.get("seed_min"),
            filters.get("seed_max"),
            filters.get("success"),
        )

    @staticmethod
    def _report_from_row(canonical_json: str, wall_time_s: float) -> RunReport:
        report = RunReport.from_dict(json.loads(canonical_json))
        return dataclasses.replace(report, wall_time_s=wall_time_s)

    @staticmethod
    def _where(
        algorithm: Optional[str],
        topology: Optional[str],
        adversary: Optional[str],
        fault_model: Optional[str],
        seed_min: Optional[int],
        seed_max: Optional[int],
        success: Optional[bool],
    ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        values: list[Any] = []
        for column, value in (
            ("algorithm", algorithm),
            ("topology", topology),
            ("fault_model", fault_model),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                values.append(value)
        if adversary is not None:
            clauses.append("adversary = ?")
            values.append("" if adversary == "none" else adversary)
        if seed_min is not None:
            clauses.append("seed >= ?")
            values.append(int(seed_min))
        if seed_max is not None:
            clauses.append("seed <= ?")
            values.append(int(seed_max))
        if success is not None:
            clauses.append("success = ?")
            values.append(int(bool(success)))
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, values
