"""Pluggable storage engines behind :class:`~repro.store.ResultStore`.

:class:`ResultStore` is the public, report-shaped API; a
:class:`StoreBackend` is the row-shaped engine underneath it. The split
exists so the sweep farm can outgrow one SQLite file without the queue,
the service, or the analysis layer noticing: every backend speaks the
same denormalized row tuples and the same deterministic orderings, so
swapping engines changes throughput, never bytes.

Two engines ship today:

* :class:`SQLiteBackend` — one database file (WAL, batched
  transactions), the engine every store used before the split;
* :class:`ShardedSQLiteBackend` — a directory of ``shard-NN.db`` files.
  Writes route by a hash of the cache key, so shards never contend on
  one file's write lock; ordered reads run the same query on every
  shard and lazily merge the sorted streams, so queries, pagination,
  and exports stay byte-identical to the single-file engine.

Because cache keys are content addresses, routing by key prefix is also
a *placement* function: any process that knows the shard count knows
where a report lives without asking anyone.
"""

from __future__ import annotations

import abc
import heapq
import re
import sqlite3
import threading
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "StoreBackend",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "open_backend",
    "shard_index",
    "STORE_SCHEMA_VERSION",
]

#: bump on incompatible table changes; opening a mismatched store raises
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reports (
    cache_key      TEXT PRIMARY KEY,
    algorithm      TEXT NOT NULL,
    topology       TEXT NOT NULL,
    adversary      TEXT NOT NULL,
    fault_model    TEXT NOT NULL,
    fault_p        REAL NOT NULL,
    seed           INTEGER NOT NULL,
    network_n      INTEGER NOT NULL,
    success        INTEGER NOT NULL,
    rounds         INTEGER NOT NULL,
    wall_time_s    REAL NOT NULL,
    canonical_json TEXT NOT NULL,
    created_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_reports_algorithm ON reports (algorithm);
CREATE INDEX IF NOT EXISTS idx_reports_topology  ON reports (topology);
CREATE INDEX IF NOT EXISTS idx_reports_adversary ON reports (adversary);
CREATE INDEX IF NOT EXISTS idx_reports_seed      ON reports (seed);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS farm_journal (
    seq     INTEGER PRIMARY KEY,
    kind    TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS timelines (
    cache_key      TEXT PRIMARY KEY,
    timeline_key   TEXT NOT NULL,
    canonical_json TEXT NOT NULL,
    created_at     REAL NOT NULL
);
"""

_SHARD_PATTERN = re.compile(r"^shard-(\d{2,})\.db$")

#: row-tuple column order shared by every backend (matches the INSERT)
ROW_COLUMNS = (
    "cache_key",
    "algorithm",
    "topology",
    "adversary",
    "fault_model",
    "fault_p",
    "seed",
    "network_n",
    "success",
    "rounds",
    "wall_time_s",
    "canonical_json",
    "created_at",
)


def shard_index(cache_key: str, shards: int) -> int:
    """Which shard a cache key routes to (stable across processes).

    CRC32 over the key text rather than ``int(key[:8], 16)`` so the
    routing works for any key string, not just hex digests.
    """
    return zlib.crc32(cache_key.encode("utf-8")) % shards


class StoreBackend(abc.ABC):
    """Row-level storage engine contract.

    ``where`` strings and ``values`` use SQLite ``?`` placeholders
    (both engines are SQLite underneath); ``order`` is a sequence of
    ascending column names, which is what lets the sharded engine do a
    lazy sorted merge instead of parsing SQL.
    """

    #: engine name, surfaced by ``ResultStore.stats()``
    kind: str = ""

    @abc.abstractmethod
    def insert_rows(self, rows: Sequence[tuple], replace: bool) -> int:
        """Insert row tuples (:data:`ROW_COLUMNS` order); returns rows written."""

    @abc.abstractmethod
    def fetch_payload(
        self, cache_key: str, columns: Sequence[str]
    ) -> Optional[tuple]:
        """The requested columns of one row, or None when absent."""

    @abc.abstractmethod
    def iter_select(
        self,
        columns: Sequence[str],
        where: str,
        values: Sequence[Any],
        order: Sequence[str],
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        batch_size: int = 4096,
    ) -> Iterator[tuple]:
        """Stream rows of ``columns`` sorted ascending by ``order``."""

    @abc.abstractmethod
    def count_where(self, where: str, values: Sequence[Any]) -> int:
        """How many rows match ``where``."""

    @abc.abstractmethod
    def group_counts(self, column: str) -> dict[str, int]:
        """``column value -> row count`` over the whole store."""

    @abc.abstractmethod
    def sum_column(self, column: str) -> float:
        """SUM over a numeric column (0.0 when empty)."""

    @abc.abstractmethod
    def attempted(self) -> int:
        """Cumulative rows ever offered to :meth:`insert_rows`.

        ``attempted - stored`` is the number of duplicate puts the
        content addressing absorbed — the farm's free dedup, surfaced
        by ``repro store --stats`` as the dedup ratio.
        """

    @abc.abstractmethod
    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard breakdown (a single-file engine reports one shard)."""

    # -- the farm journal ----------------------------------------------------
    #
    # A small append-only table of ``(kind, payload)`` records the farm
    # coordinator write-aheads its state transitions into, so a
    # coordinator crash loses no queue/lease state: the journal plus the
    # reports table *is* the coordinator's durable state. The sharded
    # engine keeps exactly one journal (on shard 0) — the journal is
    # coordinator state, not content-addressed data, so it never routes.

    # -- timeline sidecars ---------------------------------------------------
    #
    # Flight-recorder payloads (repro.timeline) ride next to the reports
    # table, keyed by the same scenario cache key — a sidecar, not a row
    # column, because timelines are orders of magnitude larger than the
    # canonical report and most stored runs never record one. The table
    # is created via ``IF NOT EXISTS``, so pre-timeline stores gain it on
    # open without a schema-version bump. Sharded engines route by the
    # report's cache key, keeping a report and its timeline co-located.

    @abc.abstractmethod
    def timeline_put(self, rows: Sequence[tuple[str, str, str, float]]) -> int:
        """Insert ``(cache_key, timeline_key, canonical_json, created_at)``
        sidecars; existing keys are left untouched. Returns rows written."""

    @abc.abstractmethod
    def timeline_fetch(self, cache_key: str) -> Optional[tuple[str, str]]:
        """``(timeline_key, canonical_json)`` for one report key, or None."""

    @abc.abstractmethod
    def timeline_count(self) -> int:
        """How many timeline sidecars the store holds."""

    @abc.abstractmethod
    def journal_append(self, records: Sequence[tuple[str, str]]) -> None:
        """Append ``(kind, payload)`` records in order (one transaction)."""

    @abc.abstractmethod
    def journal_records(self) -> list[tuple[int, str, str]]:
        """Every journal record as ``(seq, kind, payload)``, seq order."""

    @abc.abstractmethod
    def journal_replace(self, records: Sequence[tuple[str, str]]) -> None:
        """Atomically swap the whole journal for ``records`` (compaction)."""

    @abc.abstractmethod
    def journal_size(self) -> int:
        """How many records the journal currently holds."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release every connection."""


class SQLiteBackend(StoreBackend):
    """The original engine: one SQLite file, one locked connection."""

    kind = "sqlite"

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            with self._lock, self._connection as connection:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                connection.executescript(_SCHEMA)
                row = connection.execute(
                    "SELECT value FROM store_meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is None:
                    connection.execute(
                        "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(STORE_SCHEMA_VERSION)),
                    )
                elif int(row[0]) != STORE_SCHEMA_VERSION:
                    raise ValueError(
                        f"store {self.path!r} has schema version {row[0]}, "
                        f"this library writes version {STORE_SCHEMA_VERSION}"
                    )
        except Exception:
            self._connection.close()
            raise

    # -- writes -------------------------------------------------------------

    def insert_rows(self, rows: Sequence[tuple], replace: bool) -> int:
        if not rows:
            return 0
        conflict = "REPLACE" if replace else "IGNORE"
        placeholders = ", ".join("?" * len(ROW_COLUMNS))
        with self._lock, self._connection as connection:
            before = connection.total_changes
            connection.executemany(
                f"INSERT OR {conflict} INTO reports VALUES ({placeholders})",
                rows,
            )
            written = connection.total_changes - before
            connection.execute(
                "INSERT INTO store_meta (key, value) VALUES ('puts_attempted', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = "
                "CAST(CAST(value AS INTEGER) + CAST(excluded.value AS INTEGER) "
                "AS TEXT)",
                (str(len(rows)),),
            )
            return written

    # -- reads --------------------------------------------------------------

    def fetch_payload(
        self, cache_key: str, columns: Sequence[str]
    ) -> Optional[tuple]:
        with self._lock:
            return self._connection.execute(
                f"SELECT {', '.join(columns)} FROM reports WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()

    def iter_select(
        self,
        columns: Sequence[str],
        where: str,
        values: Sequence[Any],
        order: Sequence[str],
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        batch_size: int = 4096,
    ) -> Iterator[tuple]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        sql = (
            f"SELECT {', '.join(columns)} FROM reports {where} "
            f"ORDER BY {', '.join(order)}"
        )
        values = list(values)
        if limit is not None:
            sql += " LIMIT ?"
            values.append(int(limit))
        elif offset is not None:
            # SQLite requires a LIMIT clause before OFFSET; -1 = unbounded
            sql += " LIMIT -1"
        if offset is not None:
            sql += " OFFSET ?"
            values.append(int(offset))
        with self._lock:
            cursor = self._connection.execute(sql, values)
        try:
            while True:
                with self._lock:
                    batch = cursor.fetchmany(batch_size)
                if not batch:
                    return
                yield from batch
        finally:
            cursor.close()

    def count_where(self, where: str, values: Sequence[Any]) -> int:
        with self._lock:
            return self._connection.execute(
                f"SELECT COUNT(*) FROM reports {where}", list(values)
            ).fetchone()[0]

    def group_counts(self, column: str) -> dict[str, int]:
        with self._lock:
            rows = self._connection.execute(
                f"SELECT {column}, COUNT(*) FROM reports "
                f"GROUP BY {column} ORDER BY {column}"
            ).fetchall()
        return dict(rows)

    def sum_column(self, column: str) -> float:
        with self._lock:
            return self._connection.execute(
                f"SELECT COALESCE(SUM({column}), 0.0) FROM reports"
            ).fetchone()[0]

    def attempted(self) -> int:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key = 'puts_attempted'"
            ).fetchone()
        return 0 if row is None else int(row[0])

    def shard_stats(self) -> list[dict[str, Any]]:
        return [
            {
                "shard": 0,
                "path": self.path,
                "reports": self.count_where("", []),
                "attempted": self.attempted(),
            }
        ]

    # -- timeline sidecars ---------------------------------------------------

    def timeline_put(self, rows: Sequence[tuple[str, str, str, float]]) -> int:
        if not rows:
            return 0
        with self._lock, self._connection as connection:
            before = connection.total_changes
            connection.executemany(
                "INSERT OR IGNORE INTO timelines "
                "(cache_key, timeline_key, canonical_json, created_at) "
                "VALUES (?, ?, ?, ?)",
                rows,
            )
            return connection.total_changes - before

    def timeline_fetch(self, cache_key: str) -> Optional[tuple[str, str]]:
        with self._lock:
            return self._connection.execute(
                "SELECT timeline_key, canonical_json FROM timelines "
                "WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()

    def timeline_count(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM timelines"
            ).fetchone()[0]

    # -- the farm journal ----------------------------------------------------

    def journal_append(self, records: Sequence[tuple[str, str]]) -> None:
        if not records:
            return
        with self._lock, self._connection as connection:
            connection.executemany(
                "INSERT INTO farm_journal (kind, payload) VALUES (?, ?)",
                records,
            )

    def journal_records(self) -> list[tuple[int, str, str]]:
        with self._lock:
            return self._connection.execute(
                "SELECT seq, kind, payload FROM farm_journal ORDER BY seq"
            ).fetchall()

    def journal_replace(self, records: Sequence[tuple[str, str]]) -> None:
        with self._lock, self._connection as connection:
            connection.execute("DELETE FROM farm_journal")
            connection.executemany(
                "INSERT INTO farm_journal (kind, payload) VALUES (?, ?)",
                records,
            )

    def journal_size(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM farm_journal"
            ).fetchone()[0]

    def close(self) -> None:
        with self._lock:
            self._connection.close()


class ShardedSQLiteBackend(StoreBackend):
    """N SQLite files under one directory, routed by cache-key hash.

    ``path`` is a directory holding ``shard-00.db .. shard-NN.db`` (one
    :class:`SQLiteBackend` each). Pass ``shards`` to create a new store;
    an existing directory's shard count is discovered from the files and
    must match ``shards`` when both are given — the routing function is
    part of the store's identity, so a count mismatch is a hard error,
    never a silent re-route.
    """

    kind = "sharded-sqlite"

    def __init__(
        self,
        path: str,
        shards: Optional[int] = None,
        timeout: float = 30.0,
    ) -> None:
        self.path = str(path)
        directory = Path(self.path)
        existing = sorted(
            entry.name
            for entry in directory.glob("shard-*.db")
            if _SHARD_PATTERN.match(entry.name)
        ) if directory.is_dir() else []
        if existing:
            found = len(existing)
            if shards is not None and int(shards) != found:
                raise ValueError(
                    f"store {self.path!r} has {found} shards, "
                    f"but shards={shards} was requested"
                )
            shards = found
        elif shards is None:
            raise ValueError(
                f"{self.path!r} is not a sharded store and no shard "
                "count was given"
            )
        elif int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        directory.mkdir(parents=True, exist_ok=True)
        self.shards = int(shards)
        self._backends: list[SQLiteBackend] = []
        try:
            for index in range(self.shards):
                self._backends.append(
                    SQLiteBackend(
                        str(directory / f"shard-{index:02d}.db"), timeout=timeout
                    )
                )
        except Exception:
            self.close()
            raise

    def _route(self, cache_key: str) -> SQLiteBackend:
        return self._backends[shard_index(cache_key, self.shards)]

    # -- writes -------------------------------------------------------------

    def insert_rows(self, rows: Sequence[tuple], replace: bool) -> int:
        by_shard: dict[int, list[tuple]] = {}
        for row in rows:
            by_shard.setdefault(shard_index(row[0], self.shards), []).append(row)
        return sum(
            self._backends[index].insert_rows(shard_rows, replace)
            for index, shard_rows in sorted(by_shard.items())
        )

    # -- reads --------------------------------------------------------------

    def fetch_payload(
        self, cache_key: str, columns: Sequence[str]
    ) -> Optional[tuple]:
        return self._route(cache_key).fetch_payload(cache_key, columns)

    def iter_select(
        self,
        columns: Sequence[str],
        where: str,
        values: Sequence[Any],
        order: Sequence[str],
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        batch_size: int = 4096,
    ) -> Iterator[tuple]:
        # each shard streams (order columns + requested columns) in the
        # same sort; a lazy heap merge then reproduces the single-file
        # engine's global order exactly. Every ordering the store issues
        # ends with the unique cache_key, so the merge is total.
        width = len(order)
        # a shard never needs more than limit+offset rows to cover any
        # global page
        shard_limit = None if limit is None else int(limit) + int(offset or 0)
        streams = [
            backend.iter_select(
                tuple(order) + tuple(columns),
                where,
                values,
                order,
                limit=shard_limit,
                batch_size=batch_size,
            )
            for backend in self._backends
        ]
        merged = heapq.merge(*streams, key=lambda row: row[:width])
        if offset:
            merged = _skip(merged, int(offset))
        produced = 0
        for row in merged:
            if limit is not None and produced >= int(limit):
                return
            produced += 1
            yield row[width:]

    def count_where(self, where: str, values: Sequence[Any]) -> int:
        return sum(
            backend.count_where(where, values) for backend in self._backends
        )

    def group_counts(self, column: str) -> dict[str, int]:
        merged: dict[str, int] = {}
        for backend in self._backends:
            for name, count in backend.group_counts(column).items():
                merged[name] = merged.get(name, 0) + count
        return dict(sorted(merged.items(), key=lambda item: (item[0] is None, item[0])))

    def sum_column(self, column: str) -> float:
        return sum(backend.sum_column(column) for backend in self._backends)

    def attempted(self) -> int:
        return sum(backend.attempted() for backend in self._backends)

    def shard_stats(self) -> list[dict[str, Any]]:
        return [
            {
                "shard": index,
                "path": backend.path,
                "reports": backend.count_where("", []),
                "attempted": backend.attempted(),
            }
            for index, backend in enumerate(self._backends)
        ]

    # -- timeline sidecars (routed like reports, by cache key) ---------------

    def timeline_put(self, rows: Sequence[tuple[str, str, str, float]]) -> int:
        by_shard: dict[int, list[tuple[str, str, str, float]]] = {}
        for row in rows:
            by_shard.setdefault(shard_index(row[0], self.shards), []).append(row)
        return sum(
            self._backends[index].timeline_put(shard_rows)
            for index, shard_rows in sorted(by_shard.items())
        )

    def timeline_fetch(self, cache_key: str) -> Optional[tuple[str, str]]:
        return self._route(cache_key).timeline_fetch(cache_key)

    def timeline_count(self) -> int:
        return sum(backend.timeline_count() for backend in self._backends)

    # -- the farm journal (one journal per store, kept on shard 0) -----------

    def journal_append(self, records: Sequence[tuple[str, str]]) -> None:
        self._backends[0].journal_append(records)

    def journal_records(self) -> list[tuple[int, str, str]]:
        return self._backends[0].journal_records()

    def journal_replace(self, records: Sequence[tuple[str, str]]) -> None:
        self._backends[0].journal_replace(records)

    def journal_size(self) -> int:
        return self._backends[0].journal_size()

    def close(self) -> None:
        for backend in self._backends:
            backend.close()


def _skip(iterator: Iterator[tuple], count: int) -> Iterator[tuple]:
    for _ in range(count):
        if next(iterator, None) is None:
            return iter(())
    return iterator


def open_backend(
    path: str, timeout: float = 30.0, shards: Optional[int] = None
) -> StoreBackend:
    """Pick the engine for ``path``.

    A directory (existing, or requested via ``shards > 1``) opens the
    sharded engine; anything else — including ``":memory:"`` — opens the
    single-file engine. ``shards`` on an existing sharded store must
    match its file count.
    """
    import os

    if os.path.isdir(path) or (shards is not None and int(shards) > 1):
        return ShardedSQLiteBackend(path, shards=shards, timeout=timeout)
    if shards is not None and int(shards) != 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return SQLiteBackend(path, timeout=timeout)
