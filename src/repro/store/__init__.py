"""Content-addressed result store: never compute the same scenario twice.

:class:`ResultStore` keeps canonical :class:`~repro.runner.RunReport`
records in a SQLite file, keyed by :meth:`Scenario.cache_key
<repro.runner.scenario.Scenario.cache_key>` — the SHA-256 content
address of the canonical scenario dict plus the code/schema version.
The runner's determinism contract (same scenario, byte-identical
canonical report) is what makes the cache correct by construction:
a hit returns exactly the bytes a fresh run would produce.

Thread it through the runner (``run_batch(..., store=store)``), the CLI
(``repro sweep --store PATH --resume``), or the serving layer
(:mod:`repro.service`)::

    from repro import Scenario, run_batch
    from repro.store import ResultStore

    with ResultStore("results.db") as store:
        reports = run_batch(scenarios, processes=4, store=store)
        # interrupted? run it again — finished scenarios are cache hits
        reports = run_batch(scenarios, processes=4, store=store)
        decay = store.query(algorithm="decay", topology="path")
"""

from repro.store.backend import (
    ShardedSQLiteBackend,
    SQLiteBackend,
    StoreBackend,
    open_backend,
    shard_index,
)
from repro.store.store import (
    ORDERABLE_COLUMNS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreRow,
)

__all__ = [
    "ResultStore",
    "StoreRow",
    "ORDERABLE_COLUMNS",
    "STORE_SCHEMA_VERSION",
    "StoreBackend",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "open_backend",
    "shard_index",
]
