"""Robust FASTBC: the paper's new fault-tolerant diameter-linear algorithm.

Section 4.1 / Theorem 11. As in FASTBC, odd rounds run Decay. Even rounds
run the *block wave*: each fast stretch is partitioned into blocks of
``S = Θ(log log n)`` consecutive levels, and a block broadcasts for
``c·S`` consecutive even rounds (its *superround*) before the wave hands
over to the next block. Within an active block, the node at level ``l``
broadcasts in even round ``t`` iff ``l ≡ t (mod 3)`` — the mod-3 spacing
prevents collisions between consecutive BFS levels.

Formally (paper, "Formal Robust FASTBC Algorithm"): at even round ``t``, a
fast-set node at level ``l`` with rank ``r`` broadcasts iff

    floor(l / S) - 6r  ≡  floor((t/2) / (cS))   (mod 6 r_max)
    and  l ≡ t (mod 3).

The point of blocks: a single dropped transmission in plain FASTBC stalls
the wave for Θ(log n) rounds (Lemma 10); here a message only goes
*inactive* if it fails to cross a whole block — probability
``1/polylog(n)`` for suitable ``c`` — so the expected number of
Θ(log n·log log n)-round stalls is o(1) per stretch, and the total time is
``O(D + log n·log log n·(log n + log 1/δ))`` with faults (Theorem 11).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.algorithms.base import (
    BroadcastOutcome,
    as_adversary,
    channel_slowdown,
    effective_loss_rate,
    ilog2,
    run_broadcast,
)
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.errors import ProtocolError
from repro.core.packets import MessagePacket, Packet
from repro.core.protocol import NodeProtocol
from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import RankedBFSTree
from repro.util.rng import RandomSource, spawn_rng

__all__ = [
    "RobustFastBCProtocol",
    "robust_fastbc_broadcast",
    "block_size",
    "make_robust_fastbc_protocols",
]

_MESSAGE = MessagePacket(0)

#: default round multiplier c ("sufficiently large constant"); sized so a
#: block crossing fails with probability well below 1/log^3 n at p <= 1/2
DEFAULT_ROUND_MULTIPLIER = 15


def block_size(n: int) -> int:
    """The paper's S = Θ(log log n) block size (>= 1)."""
    log_n = max(2.0, math.log2(max(2, n)))
    return max(1, math.ceil(math.log2(log_n)))


class RobustFastBCProtocol(NodeProtocol):
    """Per-node Robust FASTBC over a shared GBST.

    Parameters
    ----------
    node, tree, rng, informed:
        As in :class:`~repro.algorithms.fastbc.FastBCProtocol`.
    block:
        Block size S; defaults to :func:`block_size` of n. Exposed for the
        A1 ablation (S = 1 recovers plain-FASTBC-like fragility, large S
        over-waits).
    round_multiplier:
        The constant c: a block broadcasts for c·S consecutive even rounds.
    """

    def __init__(
        self,
        node: int,
        tree: RankedBFSTree,
        rng: RandomSource,
        informed: bool = False,
        block: Optional[int] = None,
        round_multiplier: int = DEFAULT_ROUND_MULTIPLIER,
        decay_interleave: bool = True,
    ) -> None:
        self.decay_interleave = decay_interleave
        if round_multiplier < 1:
            raise ValueError(
                f"round_multiplier must be >= 1, got {round_multiplier}"
            )
        n = tree.network.n
        self.node = node
        self.rng = rng
        self.informed = informed
        self.active = informed
        self.level = tree.level[node]
        self.rank = tree.rank[node]
        self.is_fast = tree.is_fast(node)
        self.phase_length = ilog2(n) + 1
        # Same convention as FastBCProtocol: the schedule period uses the
        # Lemma 7 bound ceil(log2 n), matching the paper's Theta(log n)
        # treatment of the inter-wave wait.
        self.max_rank = max(1, ilog2(n))
        self.block = block if block is not None else block_size(n)
        if self.block < 1:
            raise ValueError(f"block size must be >= 1, got {self.block}")
        self.round_multiplier = round_multiplier
        self.informed_round: Optional[int] = 0 if informed else None

    def act(self, round_index: int) -> Optional[Packet]:
        if not self.informed:
            return None
        if round_index % 2 == 1:
            # odd: standard Decay step on all informed nodes (optional for
            # wave-isolation experiments, as in FastBCProtocol)
            if not self.decay_interleave:
                return None
            i = ((round_index - 1) // 2) % self.phase_length
            if self.rng.bernoulli(2.0 ** (-i)):
                return _MESSAGE
            return None
        # even: block wave on the fast set. t indexes even rounds; within
        # its superround, the node at level l fires on every t = l (mod 3),
        # so the wave crosses one hop per even round when transmissions
        # succeed and retries a hop every 3 even rounds after a fault.
        if not self.is_fast:
            return None
        t = round_index // 2
        s = self.block
        superround_length = self.round_multiplier * s
        modulus = 6 * self.max_rank
        target = (self.level // s - 6 * self.rank) % modulus
        current = (t // superround_length) % modulus
        if current != target:
            return None
        if self.level % 3 != t % 3:
            return None
        return _MESSAGE

    def on_receive(self, round_index: int, packet: Packet, sender: int) -> None:
        if not isinstance(packet, MessagePacket):
            raise ProtocolError(
                f"single-message protocol received {type(packet).__name__}; "
                "the model's routing packets are MessagePacket"
            )
        if not self.informed:
            self.informed = True
            self.active = True
            self.informed_round = round_index

    def is_done(self) -> bool:
        return self.informed


def make_robust_fastbc_protocols(
    network: RadioNetwork,
    rng: RandomSource,
    tree: Optional[RankedBFSTree] = None,
    block: Optional[int] = None,
    round_multiplier: int = DEFAULT_ROUND_MULTIPLIER,
    decay_interleave: bool = True,
) -> list[RobustFastBCProtocol]:
    """Build one Robust FASTBC protocol per node over a shared GBST."""
    if tree is None:
        tree = build_gbst(network).tree
    return [
        RobustFastBCProtocol(
            v,
            tree,
            rng.spawn(),
            informed=(v == network.source),
            block=block,
            round_multiplier=round_multiplier,
            decay_interleave=decay_interleave,
        )
        for v in network.nodes()
    ]


def robust_fastbc_broadcast(
    network: RadioNetwork,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    max_rounds: Optional[int] = None,
    tree: Optional[RankedBFSTree] = None,
    block: Optional[int] = None,
    round_multiplier: int = DEFAULT_ROUND_MULTIPLIER,
    decay_interleave: bool = True,
    adversary=None,
    channel=None,
) -> BroadcastOutcome:
    """Broadcast one message from the source with Robust FASTBC."""
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        log_log_n = block_size(n)
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = (
            int(
                slowdown
                * (
                    40 * depth
                    + 60 * round_multiplier * log_n * log_log_n * log_n
                )
            )
            + 200
        )
        if not decay_interleave:
            max_rounds *= 4
    protocols = make_robust_fastbc_protocols(
        network,
        source,
        tree=tree,
        block=block,
        round_multiplier=round_multiplier,
        decay_interleave=decay_interleave,
    )
    return run_broadcast(
        network,
        protocols,
        faults,
        source.spawn(),
        max_rounds,
        adversary=adversary,
        channel=channel,
    )
