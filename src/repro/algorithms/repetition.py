"""Naive repetition baselines for fault-robust FASTBC (Section 4.1).

The paper discusses two straw-man fixes before introducing Robust FASTBC:

* repeat every FASTBC round ``Θ(log n)`` times — drives per-transmission
  failure to ``1/poly(n)`` so a union bound over the run works, but costs
  ``O(D log n)`` rounds, no better than Decay;
* repeat every round ``Θ(log log n)`` times — the effective fault rate
  drops to ``1/polylog(n)``, giving ``O(D log log n + polylog n)``.

These are the A2 ablation baselines. Repetition is implemented as a round
retimer over :class:`~repro.algorithms.fastbc.FastBCProtocol`: real round
``t`` executes virtual FASTBC round ``t // repeat`` (Decay coin flips are
re-drawn per repetition, which only helps the baseline).
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    BroadcastOutcome,
    as_adversary,
    channel_slowdown,
    effective_loss_rate,
    ilog2,
    run_broadcast,
)
from repro.algorithms.fastbc import FastBCProtocol
from repro.algorithms.robust_fastbc import block_size
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import Packet
from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import RankedBFSTree
from repro.util.rng import RandomSource, spawn_rng

__all__ = [
    "RepeatedFastBCProtocol",
    "repeated_fastbc_broadcast",
    "repeat_factor_log",
    "repeat_factor_loglog",
]


def repeat_factor_log(n: int) -> int:
    """The Θ(log n) repetition factor."""
    return ilog2(max(2, n)) + 1


def repeat_factor_loglog(n: int) -> int:
    """The Θ(log log n) repetition factor."""
    return block_size(n) + 1


class RepeatedFastBCProtocol(FastBCProtocol):
    """FASTBC with every round repeated ``repeat`` times."""

    def __init__(
        self,
        node: int,
        tree: RankedBFSTree,
        rng: RandomSource,
        repeat: int,
        informed: bool = False,
    ) -> None:
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        super().__init__(node, tree, rng, informed=informed)
        self.repeat = repeat

    def act(self, round_index: int) -> Optional[Packet]:
        return super().act(round_index // self.repeat)


def repeated_fastbc_broadcast(
    network: RadioNetwork,
    repeat: int,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    max_rounds: Optional[int] = None,
    tree: Optional[RankedBFSTree] = None,
    adversary=None,
    channel=None,
) -> BroadcastOutcome:
    """Broadcast with the repetition baseline (factor ``repeat``)."""
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    if tree is None:
        tree = build_gbst(network).tree
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(60 * repeat * slowdown * (depth + log_n * log_n)) + 200
    protocols = [
        RepeatedFastBCProtocol(
            v, tree, source.spawn(), repeat, informed=(v == network.source)
        )
        for v in network.nodes()
    ]
    return run_broadcast(
        network,
        protocols,
        faults,
        source.spawn(),
        max_rounds,
        adversary=adversary,
        channel=channel,
    )
