"""Broadcast algorithms: Decay, FASTBC, Robust FASTBC, and baselines.

Single-message algorithms (Section 4.1) are implemented as per-node
:class:`~repro.core.protocol.NodeProtocol` subclasses driven by the
distributed simulator; multi-message algorithms (Section 4.2, Section 5)
live in :mod:`repro.algorithms.multi`.
"""

from repro.algorithms.base import (
    BroadcastOutcome,
    broadcast_probe,
    ilog2,
    run_broadcast,
)
from repro.algorithms.decay import DecayProtocol, decay_broadcast
from repro.algorithms.fastbc import FastBCProtocol, fastbc_broadcast
from repro.algorithms.repetition import (
    RepeatedFastBCProtocol,
    repeated_fastbc_broadcast,
)
from repro.algorithms.robust_fastbc import (
    RobustFastBCProtocol,
    robust_fastbc_broadcast,
)

__all__ = [
    "BroadcastOutcome",
    "DecayProtocol",
    "FastBCProtocol",
    "RepeatedFastBCProtocol",
    "RobustFastBCProtocol",
    "broadcast_probe",
    "decay_broadcast",
    "fastbc_broadcast",
    "ilog2",
    "repeated_fastbc_broadcast",
    "robust_fastbc_broadcast",
    "run_broadcast",
]
