"""The Decay broadcast algorithm of Bar-Yehuda, Goldreich and Itai [5].

Section 3.4.1: rounds are grouped into phases of ``ilog2(n) + 1`` rounds;
in the i-th round of a phase (i = 0, 1, ..., ilog2 n) every informed node
broadcasts independently with probability ``2^-i``. Lemma 5 shows a node
with an informed neighbor becomes informed with constant probability per
phase; Lemma 6 gives O(D log n + log n (log n + log 1/δ)) rounds faultless,
and Lemma 9 shows the *same algorithm, unchanged*, tolerates sender or
receiver faults with only a 1/(1-p) slowdown — Decay is fault-robust
because it never relies on any particular transmission succeeding.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    BroadcastOutcome,
    as_adversary,
    channel_slowdown,
    effective_loss_rate,
    ilog2,
    run_broadcast,
)
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.errors import ProtocolError
from repro.core.packets import MessagePacket, Packet
from repro.core.protocol import NodeProtocol
from repro.util.rng import RandomSource, spawn_rng

__all__ = ["DecayProtocol", "decay_broadcast"]

_MESSAGE = MessagePacket(0)


class DecayProtocol(NodeProtocol):
    """Per-node Decay: informed nodes broadcast w.p. ``2^-(t mod phase)``.

    Parameters
    ----------
    n:
        Network size (the only global knowledge Decay needs).
    rng:
        This node's private randomness.
    informed:
        True for the source.
    """

    def __init__(self, n: int, rng: RandomSource, informed: bool = False) -> None:
        self.phase_length = ilog2(n) + 1
        self.rng = rng
        self.informed = informed
        self.active = informed
        self.informed_round: Optional[int] = 0 if informed else None

    def act(self, round_index: int) -> Optional[Packet]:
        if not self.informed:
            return None
        i = round_index % self.phase_length
        if self.rng.bernoulli(2.0 ** (-i)):
            return _MESSAGE
        return None

    def on_receive(self, round_index: int, packet: Packet, sender: int) -> None:
        if not isinstance(packet, MessagePacket):
            raise ProtocolError(
                f"single-message protocol received {type(packet).__name__}; "
                "the model's routing packets are MessagePacket"
            )
        if not self.informed:
            self.informed = True
            self.active = True
            self.informed_round = round_index

    def is_done(self) -> bool:
        return self.informed


def decay_broadcast(
    network: RadioNetwork,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    max_rounds: Optional[int] = None,
    adversary=None,
    channel=None,
) -> BroadcastOutcome:
    """Broadcast one message from the source with Decay.

    ``max_rounds`` defaults to a generous multiple of the Lemma 9 bound
    ``O(log n / (1-p) · (D + log n))`` so that a timeout signals a real
    anomaly rather than an unlucky run. ``adversary`` swaps the i.i.d.
    fault coins for a registered adversary model (budgets then plan for
    its nominal loss rate); ``channel`` swaps the always-deliver medium
    for a contention MAC (budgets stretch by its planning slowdown).
    """
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(40 * slowdown * log_n * (depth + log_n)) + 100
    protocols = [
        DecayProtocol(n, source.spawn(), informed=(v == network.source))
        for v in network.nodes()
    ]
    return run_broadcast(
        network,
        protocols,
        faults,
        source.spawn(),
        max_rounds,
        adversary=adversary,
        channel=channel,
    )
