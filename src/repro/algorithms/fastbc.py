"""FASTBC: the diameter-linear algorithm of Gąsieniec, Peleg and Xin [22].

Section 3.4.2: rounds alternate between *slow* (odd) and *fast* (even).
Odd rounds run a standard Decay step over all informed nodes, pushing the
message across non-fast edges. In even round ``2t``, a fast node at level
``l`` with rank ``r`` broadcasts iff ``t ≡ l - 6r (mod 6 r_max)`` — a wave
that carries the message down each fast stretch without interference
(guaranteed by the GBST property).

Faultless, this finishes in ``D + O(log n (log n + log 1/δ))`` rounds
(Lemma 8). Under faults it degrades to ``Θ(p/(1-p)·D·log n + D/(1-p))`` on
a path (Lemma 10): one dropped wave transmission forces the message to wait
``Θ(log n)`` rounds for the next wave.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    BroadcastOutcome,
    as_adversary,
    channel_slowdown,
    effective_loss_rate,
    ilog2,
    run_broadcast,
)
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.errors import ProtocolError
from repro.core.packets import MessagePacket, Packet
from repro.core.protocol import NodeProtocol
from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import RankedBFSTree
from repro.util.rng import RandomSource, spawn_rng

__all__ = ["FastBCProtocol", "fastbc_broadcast", "make_fastbc_protocols"]

_MESSAGE = MessagePacket(0)


class FastBCProtocol(NodeProtocol):
    """Per-node FASTBC over a shared GBST (known-topology algorithm).

    Parameters
    ----------
    node:
        This node's internal index.
    tree:
        The common GBST (known topology lets all nodes agree on it).
    rng:
        Private randomness for the Decay half.
    informed:
        True for the source.
    """

    def __init__(
        self,
        node: int,
        tree: RankedBFSTree,
        rng: RandomSource,
        informed: bool = False,
        decay_interleave: bool = True,
    ) -> None:
        self.node = node
        self.decay_interleave = decay_interleave
        self.rng = rng
        self.informed = informed
        self.active = informed
        self.level = tree.level[node]
        self.rank = tree.rank[node]
        self.is_fast = tree.is_fast(node)
        self.phase_length = ilog2(tree.network.n) + 1
        # Schedule period uses the Lemma 7 *bound* ceil(log2 n) rather than
        # the realized max rank: the paper's analysis (Lemmas 8 and 10)
        # treats the wave period as Theta(log n), and using the bound also
        # spares nodes from having to know the realized tree statistic.
        self.max_rank = max(1, ilog2(tree.network.n))
        self.informed_round: Optional[int] = 0 if informed else None

    def act(self, round_index: int) -> Optional[Packet]:
        if not self.informed:
            return None
        if round_index % 2 == 1:
            # slow transmission round: standard Decay step. Experiments
            # may disable the interleave to isolate the wave mechanism
            # (the object of Lemma 10's recurrence).
            if not self.decay_interleave:
                return None
            i = ((round_index - 1) // 2) % self.phase_length
            if self.rng.bernoulli(2.0 ** (-i)):
                return _MESSAGE
            return None
        # fast transmission round 2t: wave schedule along fast stretches.
        # Fast node at level l, rank r broadcasts iff t = l - 6r (mod
        # 6 r_max); consecutive levels of a stretch fire in consecutive
        # even rounds, so the wave moves one hop per even round.
        if not self.is_fast:
            return None
        t = round_index // 2
        modulus = 6 * self.max_rank
        if (t - (self.level - 6 * self.rank)) % modulus == 0:
            return _MESSAGE
        return None

    def on_receive(self, round_index: int, packet: Packet, sender: int) -> None:
        if not isinstance(packet, MessagePacket):
            raise ProtocolError(
                f"single-message protocol received {type(packet).__name__}; "
                "the model's routing packets are MessagePacket"
            )
        if not self.informed:
            self.informed = True
            self.active = True
            self.informed_round = round_index

    def is_done(self) -> bool:
        return self.informed


def make_fastbc_protocols(
    network: RadioNetwork,
    rng: RandomSource,
    tree: Optional[RankedBFSTree] = None,
    decay_interleave: bool = True,
) -> list[FastBCProtocol]:
    """Build one FASTBC protocol per node over a shared GBST."""
    if tree is None:
        tree = build_gbst(network).tree
    return [
        FastBCProtocol(
            v,
            tree,
            rng.spawn(),
            informed=(v == network.source),
            decay_interleave=decay_interleave,
        )
        for v in network.nodes()
    ]


def fastbc_broadcast(
    network: RadioNetwork,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    max_rounds: Optional[int] = None,
    tree: Optional[RankedBFSTree] = None,
    decay_interleave: bool = True,
    adversary=None,
    channel=None,
) -> BroadcastOutcome:
    """Broadcast one message from the source with FASTBC.

    ``max_rounds`` defaults to a multiple of the *faulty* bound of
    Lemma 10 — under faults FASTBC legitimately needs ``Θ(D log n)``
    rounds, and the experiments measure exactly that degradation.
    """
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(60 * slowdown * log_n * (depth + log_n)) + 100
        if not decay_interleave:
            # pure-wave mode pays the full Theta(log n) wave period per
            # failure with no Decay assist
            max_rounds *= 4
    protocols = make_fastbc_protocols(
        network, source, tree=tree, decay_interleave=decay_interleave
    )
    return run_broadcast(
        network,
        protocols,
        faults,
        source.spawn(),
        max_rounds,
        adversary=adversary,
        channel=channel,
    )
