"""Bipartite and pipelined adaptive routing (Lemmas 20-21).

Lemma 20: on a bipartite network where every left node knows the same k
messages, routing them to the right side takes `O(k log^2 n)` rounds: run
the Decay schedule for message 1 until it succeeds, then message 2, and so
on — adaptivity supplies the "until it succeeds".

Lemma 21: on a general network, break the broadcast into the BFS layering,
split the k messages into batches, and *pipeline* batches through layers
working 3 apart (layers l and l+3 never share a receiver, so concurrent
meta-rounds don't collide). Total `O(k log^2 n)` rounds for k >> D —
worst-case adaptive routing throughput `Ω(1/log^2 n)` with receiver
faults, which together with the Lemma 19 upper bound pins the worst-case
routing throughput at `Θ(1/log^2 n)` (Lemma 22).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import ilog2
from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import MessagePacket
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "PipelinedOutcome",
    "bipartite_routing_broadcast",
    "pipelined_routing_broadcast",
]


@dataclass(frozen=True)
class PipelinedOutcome:
    """Result of a bipartite or pipelined routing run."""

    success: bool
    rounds: int
    k: int
    #: nodes that ended up holding all k messages
    completed_nodes: int
    total_nodes: int

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


def bipartite_routing_broadcast(
    network: RadioNetwork,
    k: int,
    faults: FaultConfig,
    rng: "int | RandomSource | None" = None,
    max_rounds: Optional[int] = None,
) -> PipelinedOutcome:
    """Lemma 20's schedule across the first BFS layer boundary.

    The network's layer-1 nodes are pre-loaded with all k messages (the
    lemma's premise); the schedule routes them to layer 2 by per-message
    repeated Decay. Layers beyond 2, if any, are ignored.
    """
    check_positive(k, "k")
    source = spawn_rng(rng)
    layers = network.bfs_layers()
    if len(layers) < 3:
        raise ValueError(
            "bipartite routing needs at least source + two layers"
        )
    left, right = layers[1], layers[2]
    channel = Channel(network, faults, source.spawn())
    n = network.n
    phase_length = ilog2(n) + 1
    if max_rounds is None:
        max_rounds = int(
            60 * k * phase_length * phase_length / (1.0 - faults.p)
        ) + 200

    rounds = 0
    holders = list(left)
    completed: dict[int, set[int]] = {v: set() for v in right}
    for message_index in range(k):
        packet = MessagePacket(message_index)
        missing = set(right)
        step = 0
        while missing and rounds < max_rounds:
            i = step % phase_length
            probability = 2.0 ** (-i)
            actions = {
                u: packet
                for u in holders
                if source.bernoulli(probability)
            }
            result = channel.transmit(actions)
            rounds += 1
            step += 1
            for delivery in result.deliveries:
                if delivery.receiver in missing:
                    completed[delivery.receiver].add(message_index)
                    missing.discard(delivery.receiver)
        if missing:
            break

    done = sum(1 for v in right if len(completed[v]) == k)
    return PipelinedOutcome(
        success=done == len(right),
        rounds=rounds,
        k=k,
        completed_nodes=done,
        total_nodes=len(right),
    )


def pipelined_routing_broadcast(
    network: RadioNetwork,
    k: int,
    faults: FaultConfig,
    rng: "int | RandomSource | None" = None,
    batch_size: Optional[int] = None,
    meta_round_length: Optional[int] = None,
    max_meta_rounds: Optional[int] = None,
) -> PipelinedOutcome:
    """Lemma 21's pipelined schedule over the BFS layering.

    Messages are split into batches; in meta-round m every layer l with
    ``(m - l) % 3 == 0`` and a pending batch routes that batch to layer
    l+1 with the Lemma 20 sub-schedule. Batches advance one layer per
    owned meta-round, so batch j enters layer l at meta-round ``3j + l``.
    """
    check_positive(k, "k")
    source = spawn_rng(rng)
    layers = network.bfs_layers()
    depth = len(layers) - 1
    channel = Channel(network, faults, source.spawn())
    n = network.n
    phase_length = ilog2(n) + 1

    if batch_size is None:
        batch_size = max(1, k // max(1, depth))
    batches = [
        list(range(start, min(start + batch_size, k)))
        for start in range(0, k, batch_size)
    ]
    if meta_round_length is None:
        meta_round_length = int(
            12 * batch_size * phase_length * phase_length / (1.0 - faults.p)
        )
    if max_meta_rounds is None:
        max_meta_rounds = 3 * (len(batches) + depth) + 6

    # knowledge[v] = set of message indices node v holds
    knowledge: list[set[int]] = [set() for _ in range(n)]
    knowledge[network.source] = set(range(k))

    rounds = 0
    for meta in range(max_meta_rounds):
        # layer l pushes batch j = (meta - l) / 3 to layer l+1
        active: list[tuple[int, list[int]]] = []  # (layer, batch messages)
        for l in range(0, depth):
            if (meta - l) % 3 != 0:
                continue
            j = (meta - l) // 3
            if 0 <= j < len(batches):
                active.append((l, batches[j]))
        if not active:
            continue
        # inside the meta-round, each active layer works through its batch
        # messages sequentially with Decay sub-schedules
        progress: dict[int, int] = {l: 0 for l, _ in active}  # msg ptr
        for step in range(meta_round_length):
            actions = {}
            i = step % phase_length
            probability = 2.0 ** (-i)
            for l, batch in active:
                ptr = progress[l]
                if ptr >= len(batch):
                    continue
                message = batch[ptr]
                receivers = layers[l + 1]
                if all(message in knowledge[v] for v in receivers):
                    progress[l] = ptr + 1
                    continue
                packet = MessagePacket(message)
                for u in layers[l]:
                    if message in knowledge[u] and source.bernoulli(probability):
                        actions[u] = packet
            if all(
                progress[l] >= len(batch) for l, batch in active
            ):
                break
            result = channel.transmit(actions)
            rounds += 1
            for delivery in result.deliveries:
                knowledge[delivery.receiver].add(delivery.packet.index)

    done = sum(1 for v in range(n) if len(knowledge[v]) == k)
    return PipelinedOutcome(
        success=done == n,
        rounds=rounds,
        k=k,
        completed_nodes=done,
        total_nodes=n,
    )
