"""Cluster-level simulator for worst-case-topology experiments.

The WCT experiments (Lemmas 19, 22, 23 / Theorem 24) need thousands of
rounds over networks with ~10^3 nodes. Because every node of a WCT cluster
has an identical sender neighborhood and never broadcasts, the full
channel semantics restricted to WCT collapse exactly to:

1. pick the set T of broadcasting senders;
2. a cluster hears a packet iff exactly one of its senders is in T
   (computable from the cluster-sender adjacency matrix);
3. each *member* of a hearing cluster independently receives unless its
   receiver-fault coin (probability p) fires.

This module implements that collapsed model with numpy over the adjacency
matrix — semantically identical to running
:class:`~repro.core.engine.Channel` on the expanded graph (equivalence is
asserted in tests on small instances) but orders of magnitude faster.

Schedules implemented:

* ``run_routing`` — adaptive routing: deliver message i to every member of
  every cluster before moving to i+1, sweeping Decay-style broadcast-set
  sizes over the senders. Lemma 19 predicts Θ(k log^2 n) rounds.
* ``run_coding`` — coding: every collision-free reception is useful (a
  fresh coded packet / innovative RLNC combination), so a member just
  needs k receptions. Lemma 23 predicts Θ(k log n) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topologies.wct import WCTNetwork
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive, check_probability

__all__ = ["WCTOutcome", "WCTBroadcastSimulator"]


@dataclass(frozen=True)
class WCTOutcome:
    """Result of a WCT schedule run."""

    success: bool
    rounds: int
    k: int

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


class WCTBroadcastSimulator:
    """Collapsed-model simulator over a :class:`WCTNetwork`.

    Parameters
    ----------
    wct:
        The topology (its adjacency matrix drives collision resolution).
    p:
        Receiver-fault probability (the Section 5.1 setting).
    rng:
        Seed / randomness source.
    """

    def __init__(
        self,
        wct: WCTNetwork,
        p: float,
        rng: "int | RandomSource | None" = None,
    ) -> None:
        check_probability(p, "p")
        self.wct = wct
        self.p = p
        self.rng = spawn_rng(rng)
        self._np_rng = np.random.default_rng(self.rng.randint(0, 2**31))
        self.adjacency = wct.adjacency  # (q, m) bool
        self.q = wct.num_clusters
        self.m = wct.num_senders
        self.cluster_size = wct.cluster_size

    # -- channel core -------------------------------------------------------

    def hearing_clusters(self, broadcast_mask: np.ndarray) -> np.ndarray:
        """Boolean (q,) vector: clusters with exactly one broadcaster."""
        counts = self.adjacency[:, broadcast_mask].sum(axis=1)
        return counts == 1

    def _decay_mask(self, step: int) -> np.ndarray:
        """Broadcast set for a Decay-style sweep step: a uniformly random
        sender subset of size ~ m / 2^(step mod log m)."""
        levels = max(1, int(np.log2(self.m)))
        size = max(1, self.m >> (step % (levels + 1)))
        mask = np.zeros(self.m, dtype=bool)
        chosen = self._np_rng.choice(self.m, size=size, replace=False)
        mask[chosen] = True
        return mask

    def _member_successes(self, hearing: np.ndarray) -> np.ndarray:
        """(q, cluster_size) bool: member-level receptions this round."""
        coins = self._np_rng.random((self.q, self.cluster_size)) >= self.p
        return coins & hearing[:, None]

    # -- schedules ----------------------------------------------------------

    def run_routing(self, k: int, max_rounds: "int | None" = None) -> WCTOutcome:
        """Adaptive routing: message-by-message delivery to every member.

        Each round all broadcasting senders transmit the current message
        (they hold everything after the cheap source->senders phase, whose
        O(k/(1-p)) rounds are included).
        """
        check_positive(k, "k")
        log_n = max(1, int(np.log2(self.q * self.cluster_size + self.m)))
        if max_rounds is None:
            max_rounds = int(200 * k * log_n * log_n / (1.0 - self.p)) + 1000

        rounds = self._source_to_senders_rounds(k)
        step = 0
        for _ in range(k):
            have = np.zeros((self.q, self.cluster_size), dtype=bool)
            while not have.all():
                if rounds >= max_rounds:
                    return WCTOutcome(False, rounds, k)
                mask = self._decay_mask(step)
                hearing = self.hearing_clusters(mask)
                have |= self._member_successes(hearing)
                rounds += 1
                step += 1
        return WCTOutcome(True, rounds, k)

    def run_coding(self, k: int, max_rounds: "int | None" = None) -> WCTOutcome:
        """Coding: stream distinct coded packets; a member needs any k.

        Counting receptions stands in for RLNC/RS decoding — justified by
        the MDS and innovation properties tested in :mod:`repro.coding`.
        """
        check_positive(k, "k")
        log_n = max(1, int(np.log2(self.q * self.cluster_size + self.m)))
        if max_rounds is None:
            max_rounds = int(200 * k * log_n / (1.0 - self.p)) + 1000

        rounds = self._source_to_senders_rounds(k)
        counts = np.zeros((self.q, self.cluster_size), dtype=np.int64)
        step = 0
        while counts.min() < k:
            if rounds >= max_rounds:
                return WCTOutcome(False, rounds, k)
            mask = self._decay_mask(step)
            hearing = self.hearing_clusters(mask)
            counts += self._member_successes(hearing)
            rounds += 1
            step += 1
        return WCTOutcome(True, rounds, k)

    def _source_to_senders_rounds(self, k: int) -> int:
        """Rounds for the source to hand k messages to the senders.

        The source is the only broadcaster, so every sender hears every
        round; with receiver faults each sender needs each message once.
        Simulated exactly (geometric per (message, straggler-set))."""
        rounds = 0
        for _ in range(k):
            missing = self.m
            while missing > 0:
                successes = int(
                    (self._np_rng.random(missing) >= self.p).sum()
                )
                missing -= successes
                rounds += 1
        return rounds
