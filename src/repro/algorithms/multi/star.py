"""Star-topology schedules: the Theorem 17 coding-gap experiment.

On a star (source adjacent to n leaves) with receiver faults:

* **Adaptive routing** (Lemma 15) is forced to push each message until
  every leaf has received it. The last-straggler effect costs Θ(log n)
  broadcasts per message even with full adaptivity: `Θ(k log n)` rounds.
* **Reed-Solomon coding** (Lemma 16) makes every successful reception
  count: the source streams distinct coded packets and each leaf only
  needs *any* k of them: `Θ(k)` rounds.

The ratio is the `Θ(log n)` receiver-fault coding gap. Both schedules run
on the real channel (:class:`~repro.core.engine.Channel`) with the source
as the only broadcaster — on a star, broadcasting from leaves never helps
(argued in Lemma 15's proof), so this is WLOG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import ilog2
from repro.coding.reed_solomon import ReedSolomonCode
from repro.core.engine import Channel
from repro.core.faults import FaultConfig, FaultModel
from repro.core.packets import MessagePacket, RSPacket
from repro.topologies.basic import star
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive, check_probability

__all__ = ["StarOutcome", "star_adaptive_routing", "star_rs_coding"]


@dataclass(frozen=True)
class StarOutcome:
    """Result of a star schedule run."""

    success: bool
    rounds: int
    k: int
    n_leaves: int
    #: per-leaf reception counts (diagnostic for the lower-bound argument)
    min_receptions: int
    max_receptions: int

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


def star_adaptive_routing(
    n_leaves: int,
    k: int,
    p: float,
    rng: "int | RandomSource | None" = None,
    fault_model: FaultModel = FaultModel.RECEIVER,
    max_rounds: Optional[int] = None,
) -> StarOutcome:
    """Lemma 15's schedule: broadcast m_1 until all leaves have it, then
    m_2, and so on. Fully adaptive: the source sees exactly who received.
    """
    check_positive(n_leaves, "n_leaves")
    check_positive(k, "k")
    check_probability(p, "p")
    source = spawn_rng(rng)
    network = star(n_leaves)
    faults = FaultConfig(fault_model, p)
    channel = Channel(network, faults, source.spawn())
    hub = network.source
    leaves = [v for v in network.nodes() if v != hub]
    if max_rounds is None:
        max_rounds = int(60 * k * (ilog2(n_leaves) + 1) / (1.0 - p)) + 200

    receptions = {v: 0 for v in leaves}
    rounds = 0
    for message_index in range(k):
        missing = set(leaves)
        packet = MessagePacket(message_index)
        while missing and rounds < max_rounds:
            result = channel.transmit({hub: packet})
            rounds += 1
            for delivery in result.deliveries:
                receptions[delivery.receiver] += 1
                missing.discard(delivery.receiver)
        if missing:
            return StarOutcome(
                success=False,
                rounds=rounds,
                k=k,
                n_leaves=n_leaves,
                min_receptions=min(receptions.values()),
                max_receptions=max(receptions.values()),
            )
    return StarOutcome(
        success=True,
        rounds=rounds,
        k=k,
        n_leaves=n_leaves,
        min_receptions=min(receptions.values()),
        max_receptions=max(receptions.values()),
    )


def star_rs_coding(
    n_leaves: int,
    k: int,
    p: float,
    rng: "int | RandomSource | None" = None,
    fault_model: FaultModel = FaultModel.RECEIVER,
    max_rounds: Optional[int] = None,
    validate_decode: bool = False,
) -> StarOutcome:
    """Lemma 16's schedule: stream distinct Reed-Solomon coded packets
    until every leaf holds k of them (any k suffice to decode — the MDS
    property).

    With ``validate_decode`` (used in tests; requires the run to finish
    within 256 coded packets) the function actually encodes k random
    messages, collects each leaf's packets, decodes, and verifies the
    round-trip; otherwise reception counting stands in for decoding,
    justified by the separately-tested MDS property.
    """
    check_positive(n_leaves, "n_leaves")
    check_positive(k, "k")
    check_probability(p, "p")
    source = spawn_rng(rng)
    network = star(n_leaves)
    faults = FaultConfig(fault_model, p)
    channel = Channel(network, faults, source.spawn())
    hub = network.source
    leaves = [v for v in network.nodes() if v != hub]
    if max_rounds is None:
        max_rounds = int(20 * (k + ilog2(n_leaves) + 1) / (1.0 - p)) + 100

    code = None
    coded_payloads: list[bytes] = []
    original: list[bytes] = []
    received_packets: dict[int, list[tuple[int, bytes]]] = {v: [] for v in leaves}
    if validate_decode:
        if k > 256 or max_rounds > 256:
            raise ValueError(
                "validate_decode requires k and max_rounds <= 256 "
                "(one GF(2^8) Reed-Solomon block)"
            )
        code = ReedSolomonCode(k=k, m=256)
        original = [
            bytes(source.bytes_array(16).tobytes()) for _ in range(k)
        ]
        coded_payloads = code.encode(original)

    receptions = {v: 0 for v in leaves}
    rounds = 0
    while min(receptions.values()) < k and rounds < max_rounds:
        payload = coded_payloads[rounds] if validate_decode else b""
        packet = RSPacket(coded_index=rounds, payload=payload)
        result = channel.transmit({hub: packet})
        rounds += 1
        for delivery in result.deliveries:
            receptions[delivery.receiver] += 1
            if validate_decode:
                received_packets[delivery.receiver].append(
                    (packet.coded_index, packet.payload)
                )

    success = min(receptions.values()) >= k
    if success and validate_decode:
        assert code is not None
        for v in leaves:
            decoded = code.decode(received_packets[v])
            if decoded != original:
                raise AssertionError(
                    f"leaf {v} decoded the wrong messages — MDS violation"
                )
    return StarOutcome(
        success=success,
        rounds=rounds,
        k=k,
        n_leaves=n_leaves,
        min_receptions=min(receptions.values()),
        max_receptions=max(receptions.values()),
    )
