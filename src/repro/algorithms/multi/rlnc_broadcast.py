"""Multi-message broadcast via random linear network coding (Lemmas 12-13).

Following Haeupler [24] and Ghaffari et al. [21], a single-message
algorithm whose broadcast *pattern* does not depend on what a node has
received can carry k messages: whenever the pattern tells a node to
broadcast, it transmits a fresh random GF(2^8) combination of every coded
packet it currently holds. A reception is *innovative* unless the sender's
knowledge subspace is contained in the receiver's, which over GF(2^8)
happens with probability at most 1/256 per reception; each node decodes
after k innovative receptions.

* **RLNC-Decay** (Lemma 12): the pattern is the Decay coin schedule run by
  every knowledge-holding node forever — `O(D log n + k log n + log^2 n)`
  rounds, i.e. throughput `Ω(1/log n)`.
* **RLNC-Robust-FASTBC** (Lemma 13): the pattern is Robust FASTBC's
  fixed slow/fast schedule — `O(D + k log n log log n + log^2 n log log n)`
  rounds, i.e. throughput `Ω(1/(log n log log n))`.

The pattern is *static* (a function of round number, node identity and
private coins only), satisfying the paper's "node cannot change its
behavior based on whether it receives a message" requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.algorithms.base import (
    as_adversary,
    channel_slowdown,
    effective_loss_rate,
    ilog2,
)
from repro.algorithms.robust_fastbc import (
    DEFAULT_ROUND_MULTIPLIER,
    block_size,
)
from repro.coding.rlnc import CodedPacket, RLNCEncoder
from repro.core.engine import Simulator
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.protocol import NodeProtocol
from repro.core.trace import ChannelCounters
from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import RankedBFSTree
from repro.timeline.recorder import NULL_TIMELINE
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "MultiMessageOutcome",
    "RLNCGossipProtocol",
    "rlnc_decay_broadcast",
    "rlnc_dense_wave_broadcast",
    "rlnc_robust_fastbc_broadcast",
]


@dataclass(frozen=True)
class MultiMessageOutcome:
    """Result of one k-message broadcast run."""

    success: bool
    rounds: int
    k: int
    completed_nodes: int
    total_nodes: int
    counters: ChannelCounters

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


class RLNCGossipProtocol(NodeProtocol):
    """A node that gossips RLNC combinations on a fixed broadcast pattern.

    Parameters
    ----------
    pattern:
        ``pattern(round_index, rng) -> bool``; True means "broadcast this
        round if you hold anything". Must not depend on receptions.
    encoder:
        This node's RLNC state (pre-loaded with the k messages at the
        source).
    rng:
        Private randomness (pattern coins and combination coefficients).
    """

    def __init__(
        self,
        pattern: Callable[[int, RandomSource], bool],
        encoder: RLNCEncoder,
        rng: RandomSource,
    ) -> None:
        self.pattern = pattern
        self.encoder = encoder
        self.rng = rng
        self.active = encoder.can_transmit()
        # flight recorder for rank progress; _run_gossip swaps in the
        # bound recorder when a timeline capture is armed
        self.timeline = NULL_TIMELINE

    def act(self, round_index: int) -> Optional[CodedPacket]:
        if not self.encoder.can_transmit():
            return None
        if not self.pattern(round_index, self.rng):
            return None
        return self.encoder.emit(self.rng)

    def on_receive(self, round_index: int, packet, sender: int) -> None:
        innovative = self.encoder.receive(packet)
        self.active = True
        if innovative and self.timeline.enabled:
            self.timeline.note_innovative()

    def is_done(self) -> bool:
        return self.encoder.is_complete()


def _decay_pattern(n: int) -> Callable[[int, RandomSource], bool]:
    phase_length = ilog2(n) + 1

    def pattern(round_index: int, rng: RandomSource) -> bool:
        i = round_index % phase_length
        return rng.bernoulli(2.0 ** (-i))

    return pattern


def _robust_wave_pattern(
    tree: RankedBFSTree,
    node: int,
    block: Optional[int],
    round_multiplier: int,
) -> Callable[[int, RandomSource], bool]:
    n = tree.network.n
    phase_length = ilog2(n) + 1
    max_rank = max(1, ilog2(n))
    s = block if block is not None else block_size(n)
    level = tree.level[node]
    rank = tree.rank[node]
    is_fast = tree.is_fast(node)
    superround_length = round_multiplier * s
    modulus = 6 * max_rank
    target = (level // s - 6 * rank) % modulus

    def pattern(round_index: int, rng: RandomSource) -> bool:
        if round_index % 2 == 1:
            i = ((round_index - 1) // 2) % phase_length
            return rng.bernoulli(2.0 ** (-i))
        if not is_fast:
            return False
        t = round_index // 2
        if (t // superround_length) % modulus != target:
            return False
        return level % 3 == t % 3

    return pattern


def _dense_wave_pattern(
    tree: RankedBFSTree, node: int
) -> Callable[[int, RandomSource], bool]:
    """Exploratory pattern for the paper's open problem (Section 4.2).

    The paper leaves open whether a fault-robust algorithm can broadcast k
    messages in ``O(D + k log n + polylog n)`` rounds. This pattern drops
    Robust FASTBC's superround gating entirely: every fast-set node fires
    on *every* even round with ``t ≡ level (mod 3)``, so coded generations
    pipeline down each stretch at full rate instead of one batch per
    superround cycle; odd rounds keep the Decay step for slow edges. The
    mod-3 gate still prevents adjacent-level collisions, but unlike the
    GBST wave there is no rank/level separation between *distinct* fast
    nodes of one level, so on general graphs same-level interference can
    occur — experiment X1 measures where the candidate stands.
    """
    n = tree.network.n
    phase_length = ilog2(n) + 1
    level = tree.level[node]
    is_fast = tree.is_fast(node)

    def pattern(round_index: int, rng: RandomSource) -> bool:
        if round_index % 2 == 1:
            i = ((round_index - 1) // 2) % phase_length
            return rng.bernoulli(2.0 ** (-i))
        if not is_fast:
            return False
        t = round_index // 2
        return level % 3 == t % 3

    return pattern


def _run_gossip(
    network: RadioNetwork,
    patterns: list[Callable[[int, RandomSource], bool]],
    k: int,
    payload_length: int,
    messages: Optional[list[bytes]],
    faults: FaultConfig,
    rng: RandomSource,
    max_rounds: int,
    adversary=None,
    channel=None,
) -> MultiMessageOutcome:
    if messages is None:
        if payload_length:
            messages = [
                bytes(rng.bytes_array(payload_length).tobytes())
                for _ in range(k)
            ]
        else:
            # rank-only mode: messages are empty, the coefficient vectors
            # carry all the information the experiment measures
            messages = [b""] * k
    protocols = []
    for v in network.nodes():
        if v == network.source:
            encoder = RLNCEncoder(k, payload_length, messages=messages)
        else:
            encoder = RLNCEncoder(k, payload_length)
        protocols.append(
            RLNCGossipProtocol(patterns[v], encoder, rng.spawn())
        )
    sim = Simulator(
        network, protocols, faults, rng.spawn(), adversary=adversary, channel=channel
    )
    timeline = sim.channel.timeline
    if timeline.enabled:
        # rank progress rides the same recorder the channel feeds; the
        # open bucket absorbs innovative receptions of the round just
        # resolved (deliveries dispatch after the channel epilogue)
        for protocol in protocols:
            protocol.timeline = timeline
    executed = sim.run(max_rounds)
    return MultiMessageOutcome(
        success=sim.all_done(),
        rounds=executed,
        k=k,
        completed_nodes=sim.done_count(),
        total_nodes=network.n,
        counters=sim.counters,
    )


def rlnc_decay_broadcast(
    network: RadioNetwork,
    k: int,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    payload_length: int = 0,
    messages: Optional[list[bytes]] = None,
    max_rounds: Optional[int] = None,
    adversary=None,
    channel=None,
) -> MultiMessageOutcome:
    """Broadcast k messages with RLNC over the Decay pattern (Lemma 12)."""
    check_positive(k, "k")
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(
            40 * slowdown * (depth * log_n + k * log_n + log_n * log_n)
        ) + 200
    pattern = _decay_pattern(n)
    patterns = [pattern for _ in network.nodes()]
    return _run_gossip(
        network, patterns, k, payload_length, messages, faults, source,
        max_rounds, adversary=adversary, channel=channel,
    )


def rlnc_robust_fastbc_broadcast(
    network: RadioNetwork,
    k: int,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    payload_length: int = 0,
    messages: Optional[list[bytes]] = None,
    max_rounds: Optional[int] = None,
    tree: Optional[RankedBFSTree] = None,
    block: Optional[int] = None,
    round_multiplier: int = DEFAULT_ROUND_MULTIPLIER,
    adversary=None,
    channel=None,
) -> MultiMessageOutcome:
    """Broadcast k messages with RLNC over Robust FASTBC (Lemma 13)."""
    check_positive(k, "k")
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    if tree is None:
        tree = build_gbst(network).tree
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        log_log_n = block_size(n)
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(
            slowdown
            * (
                40 * depth
                + 40 * k * log_n * log_log_n
                + 60 * round_multiplier * log_n * log_n * log_log_n
            )
        ) + 200
    patterns = [
        _robust_wave_pattern(tree, v, block, round_multiplier)
        for v in network.nodes()
    ]
    return _run_gossip(
        network, patterns, k, payload_length, messages, faults, source,
        max_rounds, adversary=adversary, channel=channel,
    )


def rlnc_dense_wave_broadcast(
    network: RadioNetwork,
    k: int,
    faults: FaultConfig = FaultConfig.faultless(),
    rng: "int | RandomSource | None" = None,
    payload_length: int = 0,
    messages: Optional[list[bytes]] = None,
    max_rounds: Optional[int] = None,
    tree: Optional[RankedBFSTree] = None,
    adversary=None,
    channel=None,
) -> MultiMessageOutcome:
    """Exploratory: RLNC over the dense-wave pattern (open problem).

    Targets the paper's open ``O(D + k log n + polylog n)`` question; see
    :func:`_dense_wave_pattern` for the construction and its caveats, and
    experiment X1 for measurements.
    """
    check_positive(k, "k")
    adversary = as_adversary(adversary)
    source = spawn_rng(rng)
    if tree is None:
        tree = build_gbst(network).tree
    n = network.n
    if max_rounds is None:
        log_n = ilog2(n) + 1
        depth = max(1, network.source_eccentricity)
        slowdown = 1.0 / (1.0 - effective_loss_rate(faults, adversary))
        slowdown *= channel_slowdown(channel)
        max_rounds = int(
            40 * slowdown * (depth + k * log_n + log_n * log_n)
        ) + 400
    patterns = [
        _dense_wave_pattern(tree, v) for v in network.nodes()
    ]
    return _run_gossip(
        network, patterns, k, payload_length, messages, faults, source,
        max_rounds, adversary=adversary, channel=channel,
    )
