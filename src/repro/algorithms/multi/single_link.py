"""Single-link schedules (Appendix A: Lemmas 29, 30, 32).

Two nodes s—t with fault probability p. On one edge there are no
collisions, and sender and receiver faults are indistinguishable (one
Bernoulli(p) coin per transmission either way), so the schedules are
simulated directly on that coin:

* **Non-adaptive routing** (Lemma 29): each message is broadcast a *fixed*
  number R of times; a message is lost if all R copies fault. To push the
  failure probability below 1/k one needs R = Θ(log k), hence Θ(k log k)
  rounds — throughput Θ(1/log k).
* **Adaptive routing** (Lemma 32): s repeats each message until it gets
  through (the source sees receptions), a geometric variable with mean
  1/(1-p) — Θ(k) rounds.
* **Coding** (Lemma 30): s streams distinct coded packets; t needs any k —
  a single negative-binomial wait, Θ(k) rounds.

The coding gap is therefore Θ(log k) against non-adaptive routing
(Lemma 31) and Θ(1) against adaptive routing (Lemma 33) — adaptivity alone
closes the single-link gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive, check_probability

__all__ = [
    "SingleLinkOutcome",
    "minimal_nonadaptive_repetitions",
    "single_link_adaptive_routing",
    "single_link_coding",
    "single_link_nonadaptive_routing",
]


@dataclass(frozen=True)
class SingleLinkOutcome:
    """Result of a single-link schedule run."""

    success: bool
    rounds: int
    k: int
    #: number of the k messages t could reconstruct at the end
    delivered: int

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


def minimal_nonadaptive_repetitions(k: int, p: float) -> int:
    """Smallest per-message repetition count R with union-bound failure
    probability at most 1/k: k * p^R <= 1/k, i.e. R = ceil(2 ln k / ln(1/p)).

    This is the Θ(log k) of Lemma 29. For p = 0 a single transmission
    suffices; for k = 1 one fault-free transmission must still be forced
    through, so R >= 1 always.
    """
    check_positive(k, "k")
    check_probability(p, "p")
    if p == 0.0:
        return 1
    if k == 1:
        return max(1, math.ceil(math.log(2) / math.log(1.0 / p)))
    return max(1, math.ceil(2.0 * math.log(k) / math.log(1.0 / p)))


def single_link_nonadaptive_routing(
    k: int,
    p: float,
    rng: "int | RandomSource | None" = None,
    repetitions: "int | None" = None,
) -> SingleLinkOutcome:
    """Lemma 29's schedule: every message broadcast ``repetitions`` times,
    deaf to outcomes. Defaults to :func:`minimal_nonadaptive_repetitions`.
    """
    check_positive(k, "k")
    check_probability(p, "p")
    source = spawn_rng(rng)
    if repetitions is None:
        repetitions = minimal_nonadaptive_repetitions(k, p)
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    delivered = 0
    for _ in range(k):
        got_it = any(
            not source.bernoulli(p) for _ in range(repetitions)
        )
        delivered += got_it
    return SingleLinkOutcome(
        success=delivered == k,
        rounds=k * repetitions,
        k=k,
        delivered=delivered,
    )


def single_link_adaptive_routing(
    k: int,
    p: float,
    rng: "int | RandomSource | None" = None,
    round_budget: "int | None" = None,
) -> SingleLinkOutcome:
    """Lemma 32's schedule: repeat each message until received, with the
    paper's total budget of ``4k/(1-p)`` rounds (default)."""
    check_positive(k, "k")
    check_probability(p, "p")
    source = spawn_rng(rng)
    if round_budget is None:
        round_budget = math.ceil(4.0 * k / (1.0 - p))
    rounds = 0
    delivered = 0
    for _ in range(k):
        while rounds < round_budget:
            rounds += 1
            if not source.bernoulli(p):
                delivered += 1
                break
        else:
            break
    return SingleLinkOutcome(
        success=delivered == k,
        rounds=rounds,
        k=k,
        delivered=delivered,
    )


def single_link_coding(
    k: int,
    p: float,
    rng: "int | RandomSource | None" = None,
    max_rounds: "int | None" = None,
) -> SingleLinkOutcome:
    """Lemma 30's schedule: stream distinct coded packets until t holds k
    of them (any k reconstruct, by the MDS property tested in
    :mod:`repro.coding.reed_solomon`)."""
    check_positive(k, "k")
    check_probability(p, "p")
    source = spawn_rng(rng)
    if max_rounds is None:
        max_rounds = math.ceil(8.0 * k / (1.0 - p)) + 50
    received = 0
    rounds = 0
    while received < k and rounds < max_rounds:
        rounds += 1
        if not source.bernoulli(p):
            received += 1
    return SingleLinkOutcome(
        success=received >= k,
        rounds=rounds,
        k=k,
        delivered=k if received >= k else 0,
    )
