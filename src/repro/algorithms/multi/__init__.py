"""Multi-message broadcast algorithms and schedules (Sections 4.2 and 5).

* :mod:`~repro.algorithms.multi.rlnc_broadcast` — RLNC gossip with Decay or
  Robust-FASTBC broadcast patterns (Lemmas 12-13).
* :mod:`~repro.algorithms.multi.star` — the Lemma 15 adaptive routing and
  Lemma 16 Reed-Solomon coding schedules on the star.
* :mod:`~repro.algorithms.multi.single_link` — Appendix A's single-link
  schedules (Lemmas 29, 30, 32).
* :mod:`~repro.algorithms.multi.pipelined` — bipartite broadcast and
  layer-pipelined routing (Lemmas 20-21).
* :mod:`~repro.algorithms.multi.wct_sim` — cluster-level simulator for the
  worst case topology experiments (Lemmas 19, 22, 23).
"""

from repro.algorithms.multi.pipelined import (
    bipartite_routing_broadcast,
    pipelined_routing_broadcast,
)
from repro.algorithms.multi.rlnc_broadcast import (
    MultiMessageOutcome,
    rlnc_decay_broadcast,
    rlnc_dense_wave_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.algorithms.multi.single_link import (
    minimal_nonadaptive_repetitions,
    single_link_adaptive_routing,
    single_link_coding,
    single_link_nonadaptive_routing,
)
from repro.algorithms.multi.star import (
    star_adaptive_routing,
    star_rs_coding,
)
from repro.algorithms.multi.wct_sim import WCTBroadcastSimulator

__all__ = [
    "MultiMessageOutcome",
    "WCTBroadcastSimulator",
    "bipartite_routing_broadcast",
    "minimal_nonadaptive_repetitions",
    "pipelined_routing_broadcast",
    "rlnc_decay_broadcast",
    "rlnc_dense_wave_broadcast",
    "rlnc_robust_fastbc_broadcast",
    "single_link_adaptive_routing",
    "single_link_coding",
    "single_link_nonadaptive_routing",
    "star_adaptive_routing",
    "star_rs_coding",
]
