"""Shared scaffolding for single-message broadcast algorithms.

Every single-message algorithm in this package is packaged the same way: a
protocol class plus a ``<name>_broadcast`` convenience function that builds
protocols for every node, runs the simulator until all nodes are informed
(or the round budget runs out), and returns a :class:`BroadcastOutcome`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.adversary.base import Adversary, effective_loss_rate
from repro.adversary.registry import as_adversary
from repro.core.engine import Simulator
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.core.network import RadioNetwork
from repro.core.protocol import NodeProtocol
from repro.core.trace import ChannelCounters
from repro.util.rng import RandomSource, spawn_rng

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "broadcast_probe",
    "effective_loss_rate",
    "as_adversary",
    "channel_slowdown",
    "ilog2",
]


def ilog2(n: int) -> int:
    """``ceil(log2 n)`` for n >= 1 (0 for n == 1) — the paper's log."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return max(0, math.ceil(math.log2(n)))


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of one single-message broadcast run.

    ``rounds`` is the number of rounds until the last node became informed
    (== ``budget`` when the run timed out and ``success`` is False).
    """

    success: bool
    rounds: int
    informed: int
    total: int
    counters: ChannelCounters

    @property
    def informed_fraction(self) -> float:
        return self.informed / self.total


def channel_slowdown(channel) -> float:
    """Budget multiplier for the scenario's channel (1.0 for the default).

    Under contention a broadcast attempt spends ~``(cw_min+1)/2`` slots in
    backoff plus the transmission slot before it can land, so round budgets
    sized for the paper's always-deliver channel must stretch by the
    channel's :meth:`~repro.mac.config.MacConfig.planning_slowdown`.
    """
    return 1.0 if channel is None else channel.planning_slowdown()


def run_broadcast(
    network: RadioNetwork,
    protocols: Sequence[NodeProtocol],
    faults: FaultConfig,
    rng: "int | RandomSource | None",
    max_rounds: int,
    adversary: "Adversary | AdversaryConfig | None" = None,
    channel=None,
) -> BroadcastOutcome:
    """Drive ``protocols`` until every node is done or the budget expires."""
    sim = Simulator(network, protocols, faults, rng, adversary=adversary, channel=channel)
    executed = sim.run(max_rounds)
    success = sim.all_done()
    return BroadcastOutcome(
        success=success,
        rounds=executed,
        informed=sim.done_count(),
        total=network.n,
        counters=sim.counters,
    )


def broadcast_probe(
    make_outcome: Callable[[int], BroadcastOutcome],
    trials: int,
    rng: "int | RandomSource | None" = None,
) -> list[BroadcastOutcome]:
    """Run ``make_outcome(seed)`` for ``trials`` independent seeds.

    The per-trial seeds derive from ``rng`` so a whole sweep reproduces
    from one top-level seed.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    source = spawn_rng(rng)
    return [make_outcome(source.spawn().seed) for _ in range(trials)]
