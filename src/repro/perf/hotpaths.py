"""Microbenchmarks for the simulation hot paths, vectorized vs reference.

Four benchmark families, each timing the vectorized kernel against the
scalar reference implementation it replaced:

* ``channel_rounds``       — :meth:`Channel.transmit` on a sparse random
  graph with a dense broadcast set, rounds/sec.
* ``star_rlnc_round_loop`` — the acceptance workload: a 1000-node star
  whose hub pumps RLNC combinations at the leaves every round (channel
  resolution + per-leaf incremental elimination), rounds/sec.
* ``rlnc_emit`` / ``rlnc_receive`` — encoder combination and decoder
  elimination throughput, ops/sec.
* ``gf_matmul``            — GF(2^8) matrix product, ops/sec (no scalar
  twin; tracked for trend only).

``run_hotpath_benchmarks`` packages everything as a JSON-serializable
report (written to ``BENCH_hotpaths.json`` by ``repro bench``);
``consistency_check`` cross-validates that the vectorized kernels and
their references agree outcome-for-outcome before any timing is trusted.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.coding.gf256 import GF256
from repro.coding.rlnc import RLNCDecoder, RLNCEncoder
from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.topologies import basic, random_graphs
from repro.util.rng import RandomSource

__all__ = [
    "BenchResult",
    "consistency_check",
    "run_hotpath_benchmarks",
    "write_report",
]

SCHEMA = "repro-bench-hotpaths/v1"

#: per-scale iteration counts: (channel rounds, star rounds, rlnc ops, matmuls)
_SCALES = {
    "smoke": {"channel_rounds": 200, "star_rounds": 120, "rlnc_ops": 2000, "matmuls": 50},
    "full": {"channel_rounds": 1000, "star_rounds": 300, "rlnc_ops": 10000, "matmuls": 300},
}


@dataclass
class BenchResult:
    """One benchmark: vectorized ops/sec, optionally vs a scalar twin."""

    name: str
    ops_per_sec: float
    reference_ops_per_sec: Optional[float] = None
    meta: dict = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        if not self.reference_ops_per_sec:
            return None
        return self.ops_per_sec / self.reference_ops_per_sec

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ops_per_sec": round(self.ops_per_sec, 2),
            "reference_ops_per_sec": (
                None
                if self.reference_ops_per_sec is None
                else round(self.reference_ops_per_sec, 2)
            ),
            "speedup": None if self.speedup is None else round(self.speedup, 2),
            "meta": self.meta,
        }


def _rate(run: Callable[[], int], repeats: int = 2) -> float:
    """ops/sec of ``run`` (which performs and returns N ops), best of repeats."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ops = run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / max(1, ops))
    return 1.0 / best


# -- channel rounds ---------------------------------------------------------


def _channel_round_run(
    network: RadioNetwork,
    action_sets: list[dict],
    vectorized: bool,
    seed: int,
) -> Callable[[], int]:
    def run() -> int:
        channel = Channel(
            network,
            FaultConfig.receiver(0.1),
            rng=seed,
            kernel="vectorized" if vectorized else "scalar",
        )
        transmit = channel.transmit if vectorized else channel.transmit_reference
        for actions in action_sets:
            transmit(actions)
        return len(action_sets)

    return run


def bench_channel_rounds(rounds: int, n: int = 1024, seed: int = 7) -> BenchResult:
    """Round resolution on a sparse G(n, p) with an n/8-node broadcast set."""
    from repro.core.packets import MessagePacket

    network = random_graphs.gnp(n, 16.0 / n, rng=seed)
    pick = RandomSource(seed)
    packet = MessagePacket(0)
    action_sets = [
        {v: packet for v in pick.sample(range(network.n), network.n // 8)}
        for _ in range(rounds)
    ]
    vec = _rate(_channel_round_run(network, action_sets, True, seed))
    ref = _rate(_channel_round_run(network, action_sets, False, seed))
    return BenchResult(
        name="channel_rounds",
        ops_per_sec=vec,
        reference_ops_per_sec=ref,
        meta={"n": network.n, "m": network.edge_count, "broadcasters": network.n // 8, "rounds": rounds},
    )


# -- the acceptance workload: 1000-node star RLNC round loop ----------------


def _star_rlnc_run(
    network: RadioNetwork,
    k: int,
    payload_length: int,
    rounds: int,
    seed: int,
    vectorized: bool,
) -> Callable[[], int]:
    source_rng = RandomSource(seed)
    messages = [
        bytes(source_rng.bytes_array(payload_length).tobytes()) for _ in range(k)
    ]

    def run() -> int:
        channel = Channel(
            network,
            FaultConfig.receiver(0.05),
            rng=seed,
            kernel="vectorized" if vectorized else "scalar",
        )
        transmit = channel.transmit if vectorized else channel.transmit_reference
        hub = RLNCEncoder(
            k, payload_length, messages=messages, reference=not vectorized
        )
        emit = hub.emit if vectorized else hub.emit_reference
        leaves = [
            RLNCDecoder(k, payload_length, reference=not vectorized)
            for _ in range(network.n - 1)
        ]
        emit_rng = RandomSource(seed + 1)
        for _ in range(rounds):
            packet = emit(emit_rng)
            coefficients = packet.coefficient_array()
            payload = packet.payload_array()
            for delivery in transmit({network.source: packet}).deliveries:
                leaves[delivery.receiver - 1].receive_raw(coefficients, payload)
        return rounds

    return run


def bench_star_rlnc_round_loop(
    rounds: int, n: int = 1000, k: int = 32, payload_length: int = 32, seed: int = 3
) -> BenchResult:
    """The ISSUE-2 acceptance workload: hub-to-999-leaves RLNC gossip.

    Each round costs one channel resolution plus ~999 incremental
    eliminations; the reference leg runs the scalar channel kernel, the
    per-row combination loop, and the per-column elimination loop.
    """
    network = basic.star(n - 1)
    vec = _rate(_star_rlnc_run(network, k, payload_length, rounds, seed, True), repeats=1)
    ref = _rate(_star_rlnc_run(network, k, payload_length, rounds, seed, False), repeats=1)
    return BenchResult(
        name="star_rlnc_round_loop",
        ops_per_sec=vec,
        reference_ops_per_sec=ref,
        meta={"n": n, "k": k, "payload_length": payload_length, "rounds": rounds},
    )


# -- RLNC encode / decode throughput ---------------------------------------


def bench_rlnc_emit(
    ops: int, k: int = 64, payload_length: int = 64, seed: int = 11
) -> BenchResult:
    """Fresh-combination emission from a full-rank encoder."""
    rng = RandomSource(seed)
    messages = [bytes(rng.bytes_array(payload_length).tobytes()) for _ in range(k)]

    def run_leg(vectorized: bool) -> Callable[[], int]:
        encoder = RLNCEncoder(
            k, payload_length, messages=messages, reference=not vectorized
        )
        emit = encoder.emit if vectorized else encoder.emit_reference

        def run() -> int:
            emit_rng = RandomSource(seed + 1)
            for _ in range(ops):
                emit(emit_rng)
            return ops

        return run

    vec = _rate(run_leg(True))
    ref = _rate(run_leg(False))
    return BenchResult(
        name="rlnc_emit",
        ops_per_sec=vec,
        reference_ops_per_sec=ref,
        meta={"k": k, "payload_length": payload_length, "ops": ops},
    )


def bench_rlnc_receive(
    ops: int, k: int = 64, payload_length: int = 64, seed: int = 13
) -> BenchResult:
    """Incremental elimination over a stream of random coded packets.

    The stream is long enough to cover both the rank-building phase and
    the saturated (non-innovative) regime that dominates RLNC gossip.
    """
    rng = RandomSource(seed)
    stream = [
        (rng.bytes_array(k), rng.bytes_array(payload_length)) for _ in range(ops)
    ]

    def run_leg(vectorized: bool) -> Callable[[], int]:
        def run() -> int:
            decoder = RLNCDecoder(k, payload_length, reference=not vectorized)
            for coefficients, payload in stream:
                decoder.receive_raw(coefficients, payload)
            return ops

        return run

    vec = _rate(run_leg(True))
    ref = _rate(run_leg(False))
    return BenchResult(
        name="rlnc_receive",
        ops_per_sec=vec,
        reference_ops_per_sec=ref,
        meta={"k": k, "payload_length": payload_length, "ops": ops},
    )


# -- GF(2^8) matmul ---------------------------------------------------------


def bench_gf_matmul(ops: int, size: int = 128, seed: int = 17) -> BenchResult:
    """Square GF(2^8) matrix products (tracked for trend, no scalar twin)."""
    rng = RandomSource(seed)
    a = rng.bytes_array(size * size).reshape(size, size)
    b = rng.bytes_array(size * size).reshape(size, size)

    def run() -> int:
        for _ in range(ops):
            GF256.matmul(a, b)
        return ops

    return BenchResult(
        name="gf_matmul",
        ops_per_sec=_rate(run),
        meta={"size": size, "ops": ops},
    )


# -- kernel/reference consistency ------------------------------------------


def consistency_check(samples: int = 20, rounds: int = 8) -> list[str]:
    """Cross-validate vectorized kernels against their scalar references.

    Samples random topologies, fault models, broadcast sets, and RLNC
    packet streams; returns a list of human-readable mismatch descriptions
    (empty list = everything agrees).
    """
    from repro.core.packets import MessagePacket

    failures: list[str] = []
    packet = MessagePacket(0)
    sampler = RandomSource(20260730)

    for index in range(samples):
        seed = sampler.randint(0, 2**31)
        n = sampler.randint(2, 80)
        kind = sampler.choice(["gnp", "star", "path", "cycle"])
        if kind == "gnp":
            network = random_graphs.gnp(
                max(n, 4), min(1.0, 8.0 / max(n, 4)), rng=seed
            )
        elif kind == "star":
            network = basic.star(max(1, n - 1))
        elif kind == "cycle":
            network = basic.cycle(max(3, n))
        else:
            network = basic.path(n)
        p = sampler.random() * 0.9
        faults = sampler.choice(
            [FaultConfig.faultless(), FaultConfig.sender(p), FaultConfig.receiver(p)]
        )
        vec = Channel(network, faults, rng=seed, kernel="vectorized")
        ref = Channel(network, faults, rng=seed)
        diverged = False
        for round_index in range(rounds):
            count = sampler.randint(0, network.n)
            actions = {
                v: packet for v in sampler.sample(range(network.n), count)
            }
            a = vec.transmit(dict(actions))
            b = ref.transmit_reference(dict(actions))
            if (
                a.deliveries != b.deliveries
                or a.noise_receivers != b.noise_receivers
                or a.collision_receivers != b.collision_receivers
                or a.faulty_senders != b.faulty_senders
            ):
                failures.append(
                    f"channel mismatch: config {index} ({kind}, n={network.n}, "
                    f"{faults}), round {round_index}"
                )
                diverged = True
                break
        # a round mismatch already implies diverging counters; only report
        # counters separately when every round matched
        if not diverged and vec.counters.as_dict() != ref.counters.as_dict():
            failures.append(
                f"channel counter mismatch: config {index} ({kind}, "
                f"n={network.n}, {faults})"
            )

    for index in range(samples):
        k = sampler.randint(1, 24)
        payload_length = sampler.randint(0, 24)
        vec_decoder = RLNCDecoder(k, payload_length)
        ref_decoder = RLNCDecoder(k, payload_length, reference=True)
        for _ in range(3 * k):
            coefficients = sampler.bytes_array(k)
            payload = sampler.bytes_array(payload_length)
            got = vec_decoder.receive_raw(coefficients, payload)
            want = ref_decoder.receive_raw(coefficients.copy(), payload.copy())
            if got != want or vec_decoder.rank != ref_decoder.rank:
                failures.append(
                    f"rlnc verdict/rank mismatch: config {index} "
                    f"(k={k}, payload={payload_length})"
                )
                break
        if vec_decoder.is_complete() and ref_decoder.is_complete():
            if not np.array_equal(vec_decoder.decode(), ref_decoder.decode()):
                failures.append(
                    f"rlnc decode mismatch: config {index} "
                    f"(k={k}, payload={payload_length})"
                )
    return failures


# -- report -----------------------------------------------------------------


def run_hotpath_benchmarks(scale: str = "smoke") -> dict:
    """Run every hot-path benchmark and return the JSON-ready report."""
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    sizes = _SCALES[scale]
    results = [
        bench_channel_rounds(sizes["channel_rounds"]),
        bench_star_rlnc_round_loop(sizes["star_rounds"]),
        bench_rlnc_emit(sizes["rlnc_ops"]),
        bench_rlnc_receive(sizes["rlnc_ops"]),
        bench_gf_matmul(sizes["matmuls"]),
    ]
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": [result.to_dict() for result in results],
    }


def write_report(report: dict, path: str) -> None:
    """Write a benchmark report as indented, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
