"""Hot-path performance tracking for the vectorized simulation substrate.

:mod:`repro.perf.hotpaths` microbenchmarks the four paths every experiment
funnels through — channel round resolution, RLNC emit, RLNC receive
(incremental elimination), and GF(2^8) matmul — each against its scalar
reference implementation, and emits a machine-readable ``BENCH_hotpaths.json``
so the perf trajectory is tracked from PR to PR. ``repro bench`` is the CLI
entry point.
"""

from repro.perf.hotpaths import (
    BenchResult,
    consistency_check,
    run_hotpath_benchmarks,
    write_report,
)

__all__ = [
    "BenchResult",
    "consistency_check",
    "run_hotpath_benchmarks",
    "write_report",
]
