"""The array-based flight recorder the channel feeds.

:class:`TimelineRecorder` accumulates per-round channel statistics into
preallocated numpy buffers — no per-event Python objects on the hot path
(the gap ROADMAP item 3 calls out for million-node runs). The channel's
round epilogue costs one attribute read and one branch when recording is
off (:data:`NULL_TIMELINE`, the default), matching the telemetry
discipline from ``repro.telemetry``.

Rows are *buckets* of ``config.every`` consecutive rounds. A bucket is
flushed lazily — at the first round of the *next* bucket, or at
:meth:`finish` — because some per-round signals arrive after the channel
epilogue: the simulator dispatches deliveries to protocols only after
``transmit`` returns, so RLNC rank progress for round ``r``
(:meth:`note_innovative`) lands while round ``r``'s bucket is still open.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import Delivery
    from repro.core.trace import ChannelCounters
    from repro.timeline.config import TimelineConfig

__all__ = ["TimelineRecorder", "NULL_TIMELINE", "DATA_COLUMNS"]

#: bucket-row columns, in canonical order. ``round_start`` is the first
#: round index of the bucket; ``informed`` is cumulative at bucket end;
#: everything else is a within-bucket sum.
DATA_COLUMNS = (
    "round_start",
    "broadcasts",
    "deliveries",
    "collisions",
    "sender_faults",
    "receiver_faults",
    "new_informed",
    "informed",
    "innovative",
)

_NCOL = len(DATA_COLUMNS)
_INITIAL_CAPACITY = 256


class _DisabledTimeline:
    """The no-op recorder every channel carries by default.

    Only ``enabled`` is ever read on the hot path; the methods exist so
    call sites outside the guarded branch (protocol hooks) stay safe.
    """

    enabled = False

    def on_round(self, round_index, counters, deliveries) -> None:
        return

    def note_innovative(self, count: int = 1) -> None:
        return

    def mark_informed(self, node: int) -> None:
        return


#: module-level singleton: the disabled path never allocates
NULL_TIMELINE = _DisabledTimeline()


class TimelineRecorder:
    """Accumulates one run's per-round flight data into numpy buffers.

    Parameters
    ----------
    n:
        Network size (bounds the per-node arrays).
    config:
        Downsampling policy (bucket width, per-node detail cap).

    Per-round column values are computed as deltas of the channel's
    :class:`~repro.core.trace.ChannelCounters` snapshot — the counters are
    maintained identically by the vectorized and scalar kernels, so a
    timeline is kernel-independent by construction (the test suite checks
    this byte-for-byte). New-delivery detection is a bulk numpy mask over
    the round's receivers (unique per round by the channel model).
    """

    enabled = True

    def __init__(self, n: int, config: "TimelineConfig") -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.config = config
        self.every = config.every
        self.rounds = 0
        self.first_delivery = np.full(n, -1, dtype=np.int64)
        self._informed_mask = np.zeros(n, dtype=bool)
        self.informed = 0
        # nodes still waiting for their first delivery; once this hits 0
        # with everyone informed, deliveries carry no per-node news and
        # on_round degrades to pure bucket arithmetic
        self._first_pending = n
        self._rows = np.zeros((_INITIAL_CAPACITY, _NCOL), dtype=np.int64)
        self._len = 0
        # previous ChannelCounters snapshot (per-round deltas)
        self._p_broadcasts = 0
        self._p_deliveries = 0
        self._p_collisions = 0
        self._p_sender_faults = 0
        self._p_receiver_faults = 0
        # open-bucket accumulators
        self._b_open = False
        self._b_index = -1
        self._b_broadcasts = 0
        self._b_deliveries = 0
        self._b_collisions = 0
        self._b_sender_faults = 0
        self._b_receiver_faults = 0
        self._b_new_informed = 0
        self._b_innovative = 0
        self._finished = False

    # -- producer side (engine / protocols) ---------------------------------

    def mark_informed(self, node: int) -> None:
        """Mark a node informed before any delivery (the source set)."""
        if not self._informed_mask[node]:
            self._informed_mask[node] = True
            self.informed += 1

    def note_innovative(self, count: int = 1) -> None:
        """Credit rank-advancing receptions to the open bucket (RLNC)."""
        self._b_innovative += count

    def on_round(
        self,
        round_index: int,
        counters: "ChannelCounters",
        deliveries: "Sequence[Delivery]",
    ) -> None:
        """Absorb one resolved channel round (the ``_run_round`` epilogue)."""
        bucket = round_index // self.every
        if self._b_open and bucket != self._b_index:
            self._flush()
        if not self._b_open:
            self._b_open = True
            self._b_index = bucket
        self.rounds += 1

        self._b_broadcasts += counters.broadcasts - self._p_broadcasts
        self._b_deliveries += counters.deliveries - self._p_deliveries
        self._b_collisions += counters.collisions - self._p_collisions
        self._b_sender_faults += counters.sender_faults - self._p_sender_faults
        self._b_receiver_faults += (
            counters.receiver_faults - self._p_receiver_faults
        )
        self._p_broadcasts = counters.broadcasts
        self._p_deliveries = counters.deliveries
        self._p_collisions = counters.collisions
        self._p_sender_faults = counters.sender_faults
        self._p_receiver_faults = counters.receiver_faults

        if deliveries and (self._first_pending or self.informed < self.n):
            receivers = np.fromiter(
                (d.receiver for d in deliveries),
                dtype=np.int64,
                count=len(deliveries),
            )
            fresh = receivers[self.first_delivery[receivers] < 0]
            if fresh.size:
                self.first_delivery[fresh] = round_index
                self._first_pending -= int(fresh.size)
            new = receivers[~self._informed_mask[receivers]]
            if new.size:
                self._informed_mask[new] = True
                self.informed += int(new.size)
                self._b_new_informed += int(new.size)

    def finish(self) -> None:
        """Flush the open bucket; idempotent, called once the run ends."""
        if self._finished:
            return
        if self._b_open:
            self._flush()
        self._finished = True

    # -- internals -----------------------------------------------------------

    def _flush(self) -> None:
        if self._len == len(self._rows):
            grown = np.zeros((2 * len(self._rows), _NCOL), dtype=np.int64)
            grown[: self._len] = self._rows
            self._rows = grown
        self._rows[self._len] = (
            self._b_index * self.every,
            self._b_broadcasts,
            self._b_deliveries,
            self._b_collisions,
            self._b_sender_faults,
            self._b_receiver_faults,
            self._b_new_informed,
            self.informed,
            self._b_innovative,
        )
        self._len += 1
        self._b_open = False
        self._b_broadcasts = 0
        self._b_deliveries = 0
        self._b_collisions = 0
        self._b_sender_faults = 0
        self._b_receiver_faults = 0
        self._b_new_informed = 0
        self._b_innovative = 0

    # -- consumer side --------------------------------------------------------

    def rows(self) -> np.ndarray:
        """The flushed bucket rows, ``(len, len(DATA_COLUMNS))`` int64."""
        return self._rows[: self._len]

    def __len__(self) -> int:
        return self._len
