"""Progress analytics over :class:`~repro.timeline.artifact.Timeline`.

The per-bucket columns answer the round-level questions a run report
cannot: how fast the informed wavefront moved (:func:`progress_curve`,
:func:`time_to_fraction`), and where listener-rounds were lost —
collisions vs. sender faults vs. receiver faults
(:func:`loss_attribution`). :func:`summarize` flattens one timeline to
scalar metrics, and :func:`aggregate_timelines` feeds those metrics into
an ``analysis.aggregate``-style group-by over every timeline a
:class:`~repro.store.ResultStore` holds, returning a canonical
:class:`~repro.analysis.report.AnalysisReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.timeline.artifact import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.report import AnalysisReport
    from repro.store import ResultStore

__all__ = [
    "progress_curve",
    "time_to_fraction",
    "loss_attribution",
    "summarize",
    "aggregate_timelines",
]

#: the wavefront checkpoints :func:`summarize` reports
SUMMARY_FRACTIONS = ((0.5, "time_to_half"), (0.9, "time_to_90"), (1.0, "time_to_all"))


def _bucket_end_round(timeline: Timeline, index: int) -> int:
    """Last simulated round covered by bucket ``index``."""
    start = timeline.columns["round_start"][index]
    return min(start + timeline.every - 1, timeline.rounds - 1)


def progress_curve(timeline: Timeline) -> list[dict[str, Any]]:
    """The informed wavefront: one point per bucket.

    Each point carries the bucket's last round, the cumulative informed
    count/fraction at that round, and the bucket's delivery activity.
    """
    n = timeline.n
    columns = timeline.columns
    points = []
    for index in range(timeline.buckets):
        informed = columns["informed"][index]
        points.append(
            {
                "round": _bucket_end_round(timeline, index),
                "informed": informed,
                "fraction": informed / n,
                "new_informed": columns["new_informed"][index],
                "deliveries": columns["deliveries"][index],
            }
        )
    return points


def time_to_fraction(timeline: Timeline, fraction: float) -> Optional[int]:
    """First round by whose bucket end ``informed/n >= fraction``.

    ``None`` when the run never got there. Resolution is the bucket
    width: with ``every=k`` the answer is the last round of the earliest
    qualifying bucket.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    threshold = fraction * timeline.n
    for index, informed in enumerate(timeline.columns["informed"]):
        if informed >= threshold:
            return _bucket_end_round(timeline, index)
    return None


def loss_attribution(timeline: Timeline) -> dict[str, Any]:
    """Where listener-rounds went: delivered vs. lost, by cause.

    ``loss_fraction`` is lost receptions over all receptions that would
    have succeeded on a noiseless channel (deliveries + every loss).
    """
    columns = timeline.columns
    deliveries = sum(columns["deliveries"])
    collisions = sum(columns["collisions"])
    sender_faults = sum(columns["sender_faults"])
    receiver_faults = sum(columns["receiver_faults"])
    lost = collisions + sender_faults + receiver_faults
    total = deliveries + lost
    return {
        "broadcasts": sum(columns["broadcasts"]),
        "deliveries": deliveries,
        "collisions": collisions,
        "sender_faults": sender_faults,
        "receiver_faults": receiver_faults,
        "lost": lost,
        "loss_fraction": lost / total if total else 0.0,
    }


def summarize(timeline: Timeline) -> dict[str, Any]:
    """Flatten one timeline to scalar progress + loss metrics."""
    summary: dict[str, Any] = {
        "n": timeline.n,
        "rounds": timeline.rounds,
        "every": timeline.every,
        "buckets": timeline.buckets,
        "informed": timeline.informed_final,
        "informed_fraction": (
            timeline.informed_final / timeline.n if timeline.n else 0.0
        ),
        "innovative": sum(timeline.columns["innovative"]),
    }
    for fraction, name in SUMMARY_FRACTIONS:
        summary[name] = time_to_fraction(timeline, fraction)
    summary.update(loss_attribution(timeline))
    return summary


#: summarize() keys aggregate_timelines accepts as metrics
_AGGREGATE_METRICS = frozenset(
    {
        "rounds",
        "informed",
        "informed_fraction",
        "innovative",
        "time_to_half",
        "time_to_90",
        "time_to_all",
        "broadcasts",
        "deliveries",
        "collisions",
        "sender_faults",
        "receiver_faults",
        "lost",
        "loss_fraction",
    }
)


def aggregate_timelines(
    store: "ResultStore",
    group_by: Sequence[str] = ("algorithm", "network_n"),
    metrics: Sequence[str] = ("time_to_half", "time_to_90", "rounds"),
    **filters: Any,
) -> "AnalysisReport":
    """Group-by over every stored timeline, ``analysis.aggregate``-style.

    Streams the store's denormalized rows (any :meth:`ResultStore.query`
    filter applies), joins each row's timeline sidecar, summarizes it,
    and reports per-group mean/min/max of the requested metrics plus the
    run count. Rows without a timeline sidecar are skipped (and counted
    in ``summary.skipped``). Returns a canonical
    :class:`~repro.analysis.report.AnalysisReport` of kind
    ``timeline_aggregate``.
    """
    # deferred: repro.analysis / repro.store import the runner stack,
    # which imports the engine, which imports this package
    from repro.analysis.report import AnalysisReport
    from repro.store.store import StoreRow

    for metric in metrics:
        if metric not in _AGGREGATE_METRICS:
            raise ValueError(
                f"unknown timeline metric {metric!r}; "
                f"allowed: {', '.join(sorted(_AGGREGATE_METRICS))}"
            )
    for column in group_by:
        if column not in StoreRow._fields:
            raise ValueError(
                f"unknown group_by column {column!r}; "
                f"allowed: {', '.join(StoreRow._fields)}"
            )

    groups: dict[tuple, dict[str, list]] = {}
    skipped = 0
    matched = 0
    for row in store.iter_rows(**filters):
        timeline = store.get_timeline(row.cache_key)
        if timeline is None:
            skipped += 1
            continue
        matched += 1
        key = tuple(getattr(row, column) for column in group_by)
        bucket = groups.setdefault(key, {metric: [] for metric in metrics})
        summary = summarize(timeline)
        for metric in metrics:
            value = summary[metric]
            if value is not None:
                bucket[metric].append(value)

    columns = list(group_by) + ["runs"]
    for metric in metrics:
        columns += [f"{metric}_mean", f"{metric}_min", f"{metric}_max"]
    rows = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        row_dict: dict[str, Any] = dict(zip(group_by, key))
        values = groups[key]
        row_dict["runs"] = max(
            (len(values[metric]) for metric in metrics), default=0
        )
        for metric in metrics:
            series = values[metric]
            if series:
                row_dict[f"{metric}_mean"] = sum(series) / len(series)
                row_dict[f"{metric}_min"] = min(series)
                row_dict[f"{metric}_max"] = max(series)
            else:
                row_dict[f"{metric}_mean"] = None
                row_dict[f"{metric}_min"] = None
                row_dict[f"{metric}_max"] = None
        rows.append(row_dict)

    return AnalysisReport(
        kind="timeline_aggregate",
        params={
            "group_by": list(group_by),
            "metrics": list(metrics),
            "filters": {k: v for k, v in sorted(filters.items())},
        },
        columns=tuple(columns),
        rows=rows,
        summary={
            "groups": len(rows),
            "timelines": matched,
            "skipped": skipped,
        },
    )
