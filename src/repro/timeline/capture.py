"""Binding a flight recorder to the run that is about to execute.

The runner knows *that* a scenario wants a timeline
(``Scenario.timeline``); the engine knows *where* the rounds happen
(the :class:`~repro.core.engine.Simulator` built deep inside an
algorithm's entry point). They meet here: :func:`capture_timeline`
parks a :class:`TimelineCapture` slot in a :class:`contextvars.ContextVar`
for the duration of ``algorithm.run``, and the first Simulator
constructed inside the context binds a fresh recorder to its channel
(and seeds the informed set from the initially-active protocols — every
broadcast protocol in this repo starts ``active`` iff it holds the
message).

First-Simulator-only is deliberate: every channel-based algorithm in the
registry drives exactly one Simulator per run, while helper channels
built elsewhere (schedule executors, benchmarks, probes) never see the
slot because they do not go through ``Simulator``. A ContextVar rather
than a module global keeps concurrent runs in the service's job threads
isolated; pool workers inherit nothing because the context is entered
inside :func:`repro.runner.run`, which executes *in* the worker.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import TYPE_CHECKING, Iterator, Optional

from repro.timeline.config import TimelineConfig
from repro.timeline.recorder import TimelineRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import Simulator

__all__ = ["TimelineCapture", "capture_timeline", "active_capture"]


class TimelineCapture:
    """The slot a capture context exposes: config in, recorder out."""

    def __init__(self, config: TimelineConfig) -> None:
        self.config = config
        self.recorder: Optional[TimelineRecorder] = None


_CAPTURE: "contextvars.ContextVar[Optional[TimelineCapture]]" = (
    contextvars.ContextVar("repro_timeline_capture", default=None)
)


@contextlib.contextmanager
def capture_timeline(config: TimelineConfig) -> Iterator[TimelineCapture]:
    """Arm timeline capture for the code run inside the context."""
    if not isinstance(config, TimelineConfig):
        raise TypeError(
            f"config must be a TimelineConfig, got {type(config).__name__}"
        )
    slot = TimelineCapture(config)
    token = _CAPTURE.set(slot)
    try:
        yield slot
    finally:
        _CAPTURE.reset(token)


def active_capture() -> Optional[TimelineCapture]:
    """The armed capture slot, or None outside any capture context."""
    return _CAPTURE.get()


def maybe_bind_simulator(simulator: "Simulator") -> None:
    """Bind a recorder to ``simulator``'s channel if capture is armed.

    Called from ``Simulator.__init__``. Only the first simulator of a
    capture context binds; later ones (none exist for registry
    algorithms today) run unrecorded rather than resetting the buffers.
    """
    slot = _CAPTURE.get()
    if slot is None or slot.recorder is not None:
        return
    recorder = TimelineRecorder(simulator.network.n, slot.config)
    for node, protocol in enumerate(simulator.protocols):
        if protocol.active:
            recorder.mark_informed(node)
    slot.recorder = recorder
    simulator.channel.timeline = recorder
