"""Run-divergence diffing: align two timelines, bisect the first split.

Two runs of the *same* scenario are byte-identical by the determinism
contract — so their timelines are too, and :func:`diff_timelines`
reports zero divergence. Change anything (the seed, the kernel if it
were buggy, the adversary) and the timelines split at some round;
the diff localizes that first diverging round and reports a per-column
delta profile, which is the round-level evidence end-of-run aggregates
cannot give.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.timeline.artifact import Timeline
from repro.timeline.recorder import DATA_COLUMNS
from repro.util.tables import Table

__all__ = ["TimelineDiff", "diff_timelines"]


@dataclass(frozen=True)
class TimelineDiff:
    """The alignment of two timelines.

    ``first_diverging_round`` is the first simulated round (bucket
    granularity: the bucket's start round) where any column differs —
    ``None`` when the bucket rows agree everywhere. ``columns`` maps
    each column to ``{first_diverging_round, diverging_buckets,
    max_abs_delta}``; ``first_delivery`` compares the per-node detail
    when the two runs sampled the same nodes.
    """

    identical: bool
    first_diverging_round: Optional[int]
    every: int
    rounds: tuple[int, int]
    buckets: tuple[int, int]
    columns: Mapping[str, dict[str, Any]]
    first_delivery: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "first_diverging_round": self.first_diverging_round,
            "every": self.every,
            "rounds": list(self.rounds),
            "buckets": list(self.buckets),
            "columns": {
                name: dict(report) for name, report in self.columns.items()
            },
            "first_delivery": dict(self.first_delivery),
        }

    def to_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> Table:
        """Per-column delta report as a renderable table."""
        if self.identical:
            title = "timelines identical: zero divergence"
        else:
            title = (
                f"first diverging round: {self.first_diverging_round} "
                f"(every={self.every})"
            )
        table = Table(
            ["column", "first_diverging_round", "diverging_buckets",
             "max_abs_delta"],
            title=title,
        )
        for name, report in self.columns.items():
            table.add_row(
                name,
                report["first_diverging_round"],
                report["diverging_buckets"],
                report["max_abs_delta"],
            )
        fd = self.first_delivery
        if fd.get("comparable"):
            table.add_row(
                "first_delivery",
                fd.get("first_differing_round"),
                fd.get("differing_nodes"),
                fd.get("max_abs_delta"),
            )
        return table


def diff_timelines(a: Timeline, b: Timeline) -> TimelineDiff:
    """Align two timelines bucket-for-bucket and localize divergence.

    Both timelines must share the bucket width (``every``) — diffing a
    per-round recording against a coarsened one would misattribute every
    bucket. Differing network sizes are allowed (the diff itself reports
    the split at round 0 via the ``informed`` column, and the per-node
    comparison is marked non-comparable).
    """
    if a.every != b.every:
        raise ValueError(
            f"cannot diff timelines with different bucket widths "
            f"(every={a.every} vs every={b.every}); re-record with a "
            "matching Scenario.timeline config"
        )
    every = a.every

    columns: dict[str, dict[str, Any]] = {}
    first_bucket: Optional[int] = None
    for name in DATA_COLUMNS:
        va = a.columns[name]
        vb = b.columns[name]
        shared = min(len(va), len(vb))
        diverging = [i for i in range(shared) if va[i] != vb[i]]
        max_abs_delta = max(
            (abs(va[i] - vb[i]) for i in diverging), default=0
        )
        first: Optional[int] = diverging[0] if diverging else None
        extra = abs(len(va) - len(vb))
        if extra and first is None:
            first = shared
        report = {
            "first_diverging_round": None if first is None else first * every,
            "diverging_buckets": len(diverging) + extra,
            "max_abs_delta": max_abs_delta,
        }
        columns[name] = report
        if first is not None and (first_bucket is None or first < first_bucket):
            first_bucket = first

    fd: dict[str, Any] = {"comparable": False}
    nodes_a = a.first_delivery.get("nodes")
    nodes_b = b.first_delivery.get("nodes")
    if a.n == b.n and nodes_a == nodes_b:
        ra = a.first_delivery["rounds"]
        rb = b.first_delivery["rounds"]
        differing = [i for i in range(len(ra)) if ra[i] != rb[i]]
        nodes = nodes_a if nodes_a is not None else tuple(range(a.n))
        fd = {
            "comparable": True,
            "differing_nodes": len(differing),
            "first_differing_node": (
                nodes[differing[0]] if differing else None
            ),
            "first_differing_round": (
                min(
                    (r for i in differing for r in (ra[i], rb[i]) if r >= 0),
                    default=None,
                )
                if differing
                else None
            ),
            "max_abs_delta": max(
                (abs(ra[i] - rb[i]) for i in differing), default=0
            ),
        }

    identical = (
        first_bucket is None
        and a.rounds == b.rounds
        and a.n == b.n
        and (not fd.get("comparable") or fd.get("differing_nodes") == 0)
        and a.first_delivery == b.first_delivery
    )
    return TimelineDiff(
        identical=identical,
        first_diverging_round=(
            None if first_bucket is None else first_bucket * every
        ),
        every=every,
        rounds=(a.rounds, b.rounds),
        buckets=(a.buckets, b.buckets),
        columns=columns,
        first_delivery=fd,
    )
