"""Timeline capture configuration.

:class:`TimelineConfig` is the opt-in knob carried by
:class:`~repro.runner.scenario.Scenario`: *whether* and *how coarsely* a
run records its per-round flight data. It deliberately imports nothing
heavy — the scenario layer and the engine both depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["TimelineConfig", "DEFAULT_NODE_DETAIL"]

#: per-node detail kept by default before the deterministic reservoir
#: kicks in (``first_delivery_round`` entries serialized per run)
DEFAULT_NODE_DETAIL = 4096


@dataclass(frozen=True)
class TimelineConfig:
    """How a run's flight recorder downsamples.

    Parameters
    ----------
    every:
        Bucket width in rounds: per-round columns are aggregated over
        consecutive windows of ``every`` rounds (``1`` = exact per-round
        rows). A 10^6-round run at ``every=100`` keeps 10^4 rows.
    node_detail:
        Cap on serialized per-node detail: when the network has more
        nodes than this, ``first_delivery_round`` is downsampled to a
        deterministic evenly-strided reservoir of ``node_detail`` nodes
        (same nodes for every run of a given ``n``, so timelines stay
        diffable).
    """

    every: int = 1
    node_detail: int = DEFAULT_NODE_DETAIL

    def __post_init__(self) -> None:
        if not isinstance(self.every, int) or isinstance(self.every, bool):
            raise TypeError(
                f"every must be an int, got {type(self.every).__name__}"
            )
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if not isinstance(self.node_detail, int) or isinstance(
            self.node_detail, bool
        ):
            raise TypeError(
                "node_detail must be an int, got "
                f"{type(self.node_detail).__name__}"
            )
        if self.node_detail < 1:
            raise ValueError(
                f"node_detail must be >= 1, got {self.node_detail}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"every": self.every, "node_detail": self.node_detail}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimelineConfig":
        return cls(
            every=int(data.get("every", 1)),
            node_detail=int(data.get("node_detail", DEFAULT_NODE_DETAIL)),
        )
