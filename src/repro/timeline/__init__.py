"""The protocol flight recorder: per-round timelines for broadcast runs.

``repro.telemetry`` (PR 8) made the *infrastructure* observable; this
package makes the *simulated protocols* observable. Opt in per scenario
(``Scenario(timeline=TimelineConfig(...))``) and the engine appends
per-round channel statistics — informed count, new deliveries,
broadcasts, collisions, fault attribution, RLNC rank progress — to
preallocated numpy buffers in the channel's round epilogue
(:class:`TimelineRecorder`; disabled cost: one attribute read + branch).
The result serializes as a canonical content-addressed
:class:`Timeline` artifact attached to the run report, stored as a
sidecar by :class:`~repro.store.ResultStore`, and served via
``GET /timelines/<key>``.

Consumers: :mod:`repro.timeline.analyze` (wavefront curves,
time-to-percentile-informed, loss attribution, store-wide group-bys)
and :func:`diff_timelines` (align two runs, bisect the first diverging
round). CLI: ``repro timeline show|curve|diff``.

This module deliberately avoids importing the runner/store/analysis
stack at import time — the engine imports it.
"""

from repro.timeline.artifact import TIMELINE_SCHEMA, Timeline
from repro.timeline.capture import (
    TimelineCapture,
    active_capture,
    capture_timeline,
)
from repro.timeline.config import TimelineConfig
from repro.timeline.diff import TimelineDiff, diff_timelines
from repro.timeline.recorder import DATA_COLUMNS, NULL_TIMELINE, TimelineRecorder

__all__ = [
    "TIMELINE_SCHEMA",
    "Timeline",
    "TimelineCapture",
    "TimelineConfig",
    "TimelineDiff",
    "TimelineRecorder",
    "DATA_COLUMNS",
    "NULL_TIMELINE",
    "active_capture",
    "capture_timeline",
    "diff_timelines",
]
