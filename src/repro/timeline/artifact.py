"""The canonical, content-addressed ``Timeline`` artifact.

A :class:`Timeline` is the serialized form of one run's flight-recorder
buffers: a columnar dict of per-bucket statistics plus the per-node
``first_delivery_round`` detail (reservoir-capped). Like
:class:`~repro.analysis.report.AnalysisReport`, the canonical rendering is
byte-stable — compact separators, sorted keys, schema and code version in
the body — so equal timelines compare byte-identical and
:meth:`Timeline.cache_key` is a valid content address for the sidecar
payload the store keeps next to the run report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro._version import __version__
from repro.timeline.config import TimelineConfig
from repro.timeline.recorder import DATA_COLUMNS, TimelineRecorder

__all__ = ["Timeline", "TIMELINE_SCHEMA"]

#: bump when the timeline columnar layout changes incompatibly
TIMELINE_SCHEMA = 1


@dataclass(frozen=True)
class Timeline:
    """One run's per-round flight data, in canonical columnar form.

    ``columns`` maps each :data:`~repro.timeline.recorder.DATA_COLUMNS`
    name to a per-bucket tuple (all the same length). ``first_delivery``
    holds per-node detail: ``{"rounds": (...)}`` covering nodes
    ``0..n-1`` when the run fit under the configured ``node_detail`` cap,
    or ``{"nodes": (...), "rounds": (...)}`` for the deterministic
    evenly-strided reservoir otherwise (``-1`` = never delivered to; the
    source is typically ``-1`` and informed from round 0).
    """

    n: int
    every: int
    rounds: int
    columns: Mapping[str, tuple[int, ...]]
    first_delivery: Mapping[str, tuple[int, ...]]

    @property
    def buckets(self) -> int:
        return len(self.columns["round_start"])

    @property
    def informed_final(self) -> int:
        informed = self.columns["informed"]
        return informed[-1] if informed else 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_recorder(cls, recorder: TimelineRecorder) -> "Timeline":
        """Freeze a recorder's buffers (flushes the open bucket)."""
        recorder.finish()
        rows = recorder.rows()
        columns = {
            name: tuple(rows[:, i].tolist())
            for i, name in enumerate(DATA_COLUMNS)
        }
        n = recorder.n
        detail = recorder.config.node_detail
        fd = recorder.first_delivery
        if n <= detail:
            first_delivery = {"rounds": tuple(fd.tolist())}
        else:
            # deterministic evenly-strided reservoir: the same nodes for
            # every run of a given (n, node_detail), so capped timelines
            # from different runs stay node-for-node diffable
            ids = (np.arange(detail, dtype=np.int64) * n) // detail
            first_delivery = {
                "nodes": tuple(ids.tolist()),
                "rounds": tuple(fd[ids].tolist()),
            }
        return cls(
            n=n,
            every=recorder.every,
            rounds=recorder.rounds,
            columns=columns,
            first_delivery=first_delivery,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-serializable body (schema + version included)."""
        return {
            "schema": TIMELINE_SCHEMA,
            "version": __version__,
            "n": self.n,
            "every": self.every,
            "rounds": self.rounds,
            "columns": {
                name: list(values) for name, values in self.columns.items()
            },
            "first_delivery": {
                key: list(values)
                for key, values in self.first_delivery.items()
            },
        }

    def to_json(self) -> str:
        """Byte-stable canonical rendering (the stored sidecar payload)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def cache_key(self) -> str:
        """SHA-256 content address over the canonical rendering."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timeline":
        """Inverse of :meth:`to_dict` (tolerates same-schema extras)."""
        schema = int(data.get("schema", TIMELINE_SCHEMA))
        if schema != TIMELINE_SCHEMA:
            raise ValueError(
                f"timeline schema {schema} not supported "
                f"(this code reads schema {TIMELINE_SCHEMA})"
            )
        columns = {
            str(name): tuple(int(v) for v in values)
            for name, values in dict(data["columns"]).items()
        }
        missing = set(DATA_COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"timeline missing columns: {sorted(missing)}")
        first_delivery = {
            str(key): tuple(int(v) for v in values)
            for key, values in dict(data["first_delivery"]).items()
        }
        return cls(
            n=int(data["n"]),
            every=int(data["every"]),
            rounds=int(data["rounds"]),
            columns=columns,
            first_delivery=first_delivery,
        )

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        return cls.from_dict(json.loads(text))

    def config(self) -> TimelineConfig:
        """The capture config this timeline is consistent with.

        ``node_detail`` is recovered only up to the cap actually applied:
        an uncapped timeline reports ``node_detail >= n``.
        """
        if "nodes" in self.first_delivery:
            detail = len(self.first_delivery["nodes"])
        else:
            detail = max(self.n, 1)
        return TimelineConfig(every=self.every, node_detail=detail)
