"""Simulation instrumentation: cheap counters plus an optional event log.

Counters are always maintained (a handful of integer increments per round).
The full per-event log is opt-in because long multi-message simulations
would otherwise accumulate millions of event records.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ChannelCounters", "TraceRecorder", "TraceEvent"]


@dataclass
class ChannelCounters:
    """Aggregate channel statistics for one simulation run."""

    rounds: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    collisions: int = 0  # listener-rounds lost to >= 2 broadcasting neighbors
    sender_faults: int = 0  # broadcaster-rounds that transmitted noise
    receiver_faults: int = 0  # deliveries replaced by noise at the receiver

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "broadcasts": self.broadcasts,
            "deliveries": self.deliveries,
            "collisions": self.collisions,
            "sender_faults": self.sender_faults,
            "receiver_faults": self.receiver_faults,
        }

    def __str__(self) -> str:
        return (
            f"rounds={self.rounds} broadcasts={self.broadcasts} "
            f"deliveries={self.deliveries} collisions={self.collisions} "
            f"sender_faults={self.sender_faults} "
            f"receiver_faults={self.receiver_faults}"
        )


@dataclass(frozen=True)
class TraceEvent:
    """One channel event. ``kind`` is one of:

    ``broadcast`` (node sent a packet), ``deliver`` (receiver got packet
    from sender), ``collision`` (receiver heard >= 2 broadcasters),
    ``sender_fault`` (broadcaster emitted noise), ``receiver_fault``
    (receiver's sole reception was replaced by noise).
    """

    round_index: int
    kind: str
    node: int
    peer: Optional[int] = None
    detail: Any = None


class TraceRecorder:
    """Collects :class:`TraceEvent` records when enabled.

    Parameters
    ----------
    enabled:
        When False (default) the recorder is a no-op and costs one branch
        per call site.
    max_events:
        Safety cap; recording stops past the cap (the counters in
        :class:`ChannelCounters` stay exact regardless). Overflow is
        accounted, not silent: ``dropped`` counts the events lost to the
        cap, :meth:`as_dict` exposes it, and the first drop emits one
        :class:`RuntimeWarning`.
    sample:
        Fraction of offered events kept, decided per event by a hash of
        ``(sample_seed, event position)`` — the same idiom as
        :class:`~repro.telemetry.tracing.TraceSink`'s per-trace coin, so
        two runs of the same simulation (or the scalar and vectorized
        channel kernels replaying identical event streams) keep the
        *same* subset. 1.0 (the default) keeps everything and skips the
        coin entirely; events skipped by sampling are counted in
        ``sampled_out`` and never touch the cap.
    sample_seed:
        Seed for the per-event coin; vary it to draw a different (still
        deterministic) subset at the same rate.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_events: int = 1_000_000,
        sample: float = 1.0,
        sample_seed: int = 0,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.enabled = enabled
        self.max_events = max_events
        self.sample = float(sample)
        self.sample_seed = int(sample_seed)
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self.sampled_out = 0
        self._offered = 0

    def _keeps(self, index: int) -> bool:
        """The sampling decision for the ``index``-th offered event.

        Pure in ``(sample_seed, index)``: a splitmix64 finalizer turns
        the position into a uniform coin, so the kept subset depends only
        on the event order, never on wall time or process state.
        """
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        x = (
            self.sample_seed * 0x9E3779B97F4A7C15 + index + 1
        ) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        return x / float(1 << 64) < self.sample

    def record(
        self,
        round_index: int,
        kind: str,
        node: int,
        peer: Optional[int] = None,
        detail: Any = None,
    ) -> None:
        if not self.enabled:
            return
        index = self._offered
        self._offered += 1
        if not self._keeps(index):
            self.sampled_out += 1
            return
        if len(self.events) >= self.max_events:
            if self.dropped == 0:
                warnings.warn(
                    f"TraceRecorder hit its {self.max_events}-event cap; "
                    "further events are dropped (counted in .dropped). "
                    "Raise max_events or use a Scenario.timeline config "
                    "for bounded per-round recording.",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.dropped += 1
            return
        self.events.append(TraceEvent(round_index, kind, node, peer, detail))

    def as_dict(self) -> dict[str, Any]:
        """Recording status summary (capacity, recorded, dropped)."""
        return {
            "enabled": self.enabled,
            "max_events": self.max_events,
            "recorded": len(self.events),
            "dropped": self.dropped,
            "sample": self.sample,
            "sampled_out": self.sampled_out,
        }

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def events_in_round(self, round_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.round_index == round_index]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.sampled_out = 0
        self._offered = 0

    def __len__(self) -> int:
        return len(self.events)
