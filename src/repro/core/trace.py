"""Simulation instrumentation: cheap counters plus an optional event log.

Counters are always maintained (a handful of integer increments per round).
The full per-event log is opt-in because long multi-message simulations
would otherwise accumulate millions of event records.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ChannelCounters", "TraceRecorder", "TraceEvent"]


@dataclass
class ChannelCounters:
    """Aggregate channel statistics for one simulation run."""

    rounds: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    collisions: int = 0  # listener-rounds lost to >= 2 broadcasting neighbors
    sender_faults: int = 0  # broadcaster-rounds that transmitted noise
    receiver_faults: int = 0  # deliveries replaced by noise at the receiver

    def as_dict(self) -> dict[str, int]:
        return {
            "rounds": self.rounds,
            "broadcasts": self.broadcasts,
            "deliveries": self.deliveries,
            "collisions": self.collisions,
            "sender_faults": self.sender_faults,
            "receiver_faults": self.receiver_faults,
        }

    def __str__(self) -> str:
        return (
            f"rounds={self.rounds} broadcasts={self.broadcasts} "
            f"deliveries={self.deliveries} collisions={self.collisions} "
            f"sender_faults={self.sender_faults} "
            f"receiver_faults={self.receiver_faults}"
        )


@dataclass(frozen=True)
class TraceEvent:
    """One channel event. ``kind`` is one of:

    ``broadcast`` (node sent a packet), ``deliver`` (receiver got packet
    from sender), ``collision`` (receiver heard >= 2 broadcasters),
    ``sender_fault`` (broadcaster emitted noise), ``receiver_fault``
    (receiver's sole reception was replaced by noise).
    """

    round_index: int
    kind: str
    node: int
    peer: Optional[int] = None
    detail: Any = None


class TraceRecorder:
    """Collects :class:`TraceEvent` records when enabled.

    Parameters
    ----------
    enabled:
        When False (default) the recorder is a no-op and costs one branch
        per call site.
    max_events:
        Safety cap; recording stops past the cap (the counters in
        :class:`ChannelCounters` stay exact regardless). Overflow is
        accounted, not silent: ``dropped`` counts the events lost to the
        cap, :meth:`as_dict` exposes it, and the first drop emits one
        :class:`RuntimeWarning`.
    """

    def __init__(self, enabled: bool = False, max_events: int = 1_000_000) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(
        self,
        round_index: int,
        kind: str,
        node: int,
        peer: Optional[int] = None,
        detail: Any = None,
    ) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            if self.dropped == 0:
                warnings.warn(
                    f"TraceRecorder hit its {self.max_events}-event cap; "
                    "further events are dropped (counted in .dropped). "
                    "Raise max_events or use a Scenario.timeline config "
                    "for bounded per-round recording.",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.dropped += 1
            return
        self.events.append(TraceEvent(round_index, kind, node, peer, detail))

    def as_dict(self) -> dict[str, Any]:
        """Recording status summary (capacity, recorded, dropped)."""
        return {
            "enabled": self.enabled,
            "max_events": self.max_events,
            "recorded": len(self.events),
            "dropped": self.dropped,
        }

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def events_in_round(self, round_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.round_index == round_index]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
