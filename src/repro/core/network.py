"""The radio network graph: topology container with precomputed adjacency.

A :class:`RadioNetwork` wraps an undirected, connected networkx graph. Nodes
are relabeled to contiguous integers ``0..n-1`` for the simulation hot path;
the original labels are retained for reporting. Distances from the source
(BFS levels) and the diameter are computed lazily and cached.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

import networkx as nx
import numpy as np

from repro.core.errors import TopologyError

__all__ = ["RadioNetwork"]


class RadioNetwork:
    """An undirected, connected radio network with a designated source.

    Parameters
    ----------
    graph:
        Undirected networkx graph. Must be connected, contain at least one
        node, and contain no self-loops.
    source:
        The broadcast source node (a node of ``graph``). Defaults to the
        first node in iteration order.
    name:
        Optional human-readable topology name for reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        source: Optional[Hashable] = None,
        name: str = "",
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("radio network requires at least one node")
        if graph.is_directed():
            raise TopologyError("radio networks are undirected")
        if any(u == v for u, v in graph.edges()):
            raise TopologyError("radio networks must not contain self-loops")
        if not nx.is_connected(graph):
            raise TopologyError(
                "radio network must be connected (broadcast must be able "
                "to reach every node)"
            )

        original_nodes = list(graph.nodes())
        if source is None:
            source = original_nodes[0]
        if source not in graph:
            raise TopologyError(f"source {source!r} is not a node of the graph")

        self.name = name or "network"
        self._labels: list[Hashable] = original_nodes
        self._index_of: dict[Hashable, int] = {
            label: i for i, label in enumerate(original_nodes)
        }
        self.n = len(original_nodes)
        self.source: int = self._index_of[source]

        # adjacency as tuples of ints — the engine iterates these heavily
        self.neighbors: list[tuple[int, ...]] = [() for _ in range(self.n)]
        for label, i in self._index_of.items():
            self.neighbors[i] = tuple(
                self._index_of[v] for v in graph.neighbors(label)
            )

        # CSR mirror of the adjacency for the vectorized channel kernel:
        # neighbors of node v are indices[indptr[v]:indptr[v + 1]].
        self.indptr = np.zeros(self.n + 1, dtype=np.int32)
        self.indptr[1:] = np.cumsum(
            [len(adj) for adj in self.neighbors], dtype=np.int64
        )
        self.indices = np.fromiter(
            (v for adj in self.neighbors for v in adj),
            dtype=np.int32,
            count=int(self.indptr[-1]),
        )

        self._graph = graph
        self._levels: Optional[list[int]] = None
        self._diameter: Optional[int] = None
        self._eccentricity: Optional[int] = None

    # -- structure ----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (original labels)."""
        return self._graph

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def label_of(self, index: int) -> Hashable:
        """Original label of internal node ``index``."""
        return self._labels[index]

    def index_of(self, label: Hashable) -> int:
        """Internal index of an original node label."""
        try:
            return self._index_of[label]
        except KeyError:
            raise TopologyError(f"{label!r} is not a node of {self.name}") from None

    def degree(self, index: int) -> int:
        return len(self.neighbors[index])

    @property
    def max_degree(self) -> int:
        return max(len(adj) for adj in self.neighbors)

    # -- metrics ------------------------------------------------------------

    def levels(self) -> list[int]:
        """BFS distance from the source for every node (index order)."""
        if self._levels is None:
            dist = [-1] * self.n
            dist[self.source] = 0
            frontier = [self.source]
            level = 0
            while frontier:
                level += 1
                next_frontier = []
                for u in frontier:
                    for v in self.neighbors[u]:
                        if dist[v] < 0:
                            dist[v] = level
                            next_frontier.append(v)
                frontier = next_frontier
            self._levels = dist
        return self._levels

    @property
    def source_eccentricity(self) -> int:
        """Largest BFS distance from the source (depth of broadcast)."""
        if self._eccentricity is None:
            self._eccentricity = max(self.levels())
        return self._eccentricity

    @property
    def diameter(self) -> int:
        """Graph diameter. Computed on demand; O(n·m) — cached."""
        if self._diameter is None:
            if self.n == 1:
                self._diameter = 0
            else:
                self._diameter = nx.diameter(self._graph)
        return self._diameter

    def bfs_layers(self) -> list[list[int]]:
        """Nodes grouped by BFS level from the source (level 0 first)."""
        levels = self.levels()
        layers: list[list[int]] = [[] for _ in range(max(levels) + 1)]
        for node, level in enumerate(levels):
            layers[level].append(node)
        return layers

    def nodes(self) -> Iterable[int]:
        """Internal node indices 0..n-1."""
        return range(self.n)

    def __repr__(self) -> str:
        return (
            f"RadioNetwork(name={self.name!r}, n={self.n}, "
            f"m={self.edge_count}, source={self.label_of(self.source)!r})"
        )
