"""Packet types carried on the radio channel.

The model distinguishes *routing* packets — one of the k broadcast messages,
identified by index (Section 3.1) — from *coding* packets, which are
arbitrary O(log nk)-bit strings. Three concrete packet kinds cover the
paper's schedules:

* :class:`MessagePacket` — routing: "message i" (optionally with payload).
* :class:`RSPacket` — a Reed-Solomon coded packet identified by its coded
  index (Lemmas 16, 26, 30).
* :class:`repro.coding.rlnc.CodedPacket` — an RLNC combination
  (Lemmas 12-13); re-exported here for convenience.

``NOISE`` is the distinguished non-packet a node perceives on collision,
fault, or silence. The model guarantees nodes never mistake it for a
packet, which the engine enforces by *not delivering anything at all* in
those cases — protocols observe noise as the absence of a delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.coding.rlnc import CodedPacket

__all__ = ["MessagePacket", "RSPacket", "NOISE", "NoiseType", "Packet"]


class NoiseType:
    """Singleton sentinel for noise; falsy so ``if reception:`` reads well."""

    _instance: "NoiseType | None" = None

    def __new__(cls) -> "NoiseType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NOISE"


NOISE = NoiseType()


@dataclass(frozen=True)
class MessagePacket:
    """A routing packet: one of the k broadcast messages.

    ``index`` identifies the message in {0, ..., k-1}; ``payload`` carries
    the message content where an experiment needs end-to-end data integrity
    checks (empty by default — most round-complexity experiments only track
    identity).
    """

    index: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"message index must be >= 0, got {self.index}")


@dataclass(frozen=True)
class RSPacket:
    """A Reed-Solomon coded packet: coded index plus coded payload."""

    coded_index: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.coded_index < 0:
            raise ValueError(
                f"coded index must be >= 0, got {self.coded_index}"
            )


Packet = Union[MessagePacket, RSPacket, CodedPacket]
