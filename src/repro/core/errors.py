"""Exception hierarchy for the library.

All library-raised domain errors derive from :class:`ReproError`, so callers
can catch one type at an experiment boundary. Programming errors (bad
arguments) still raise the standard ``TypeError`` / ``ValueError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "SimulationError",
    "ProtocolError",
    "BroadcastTimeout",
]


class ReproError(Exception):
    """Base class for all domain errors raised by the library."""


class TopologyError(ReproError):
    """A topology violates a structural requirement (e.g. disconnected)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ProtocolError(ReproError):
    """A node protocol violated the model contract (e.g. broadcast while
    claiming to be idle, or emitted a packet of the wrong type)."""


class BroadcastTimeout(ReproError):
    """A broadcast did not complete within the allotted round budget.

    Carries the progress made so far so experiments can distinguish "slow"
    from "stuck".
    """

    def __init__(self, rounds: int, informed: int, total: int) -> None:
        self.rounds = rounds
        self.informed = informed
        self.total = total
        super().__init__(
            f"broadcast incomplete after {rounds} rounds: "
            f"{informed}/{total} nodes informed"
        )
