"""Core noisy radio network model: channel semantics, faults, simulation.

This package is the normative implementation of the model in Section 3.1 of
the paper (see DESIGN.md section 5 for the exact semantics):

* synchronized rounds; each node either broadcasts one packet or listens;
* a listening node receives a packet iff **exactly one** neighbor broadcasts;
* *sender faults*: each broadcaster independently transmits noise w.p. ``p``
  (all its would-be receivers get noise);
* *receiver faults*: each node that would receive a packet independently
  gets noise instead w.p. ``p``;
* noise (from collisions, faults, or silence) is never mistaken for a
  legitimate packet.
"""

from repro.core.errors import (
    BroadcastTimeout,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.core.faults import AdversaryConfig, FaultConfig, FaultModel
from repro.core.network import RadioNetwork
from repro.core.packets import NOISE, MessagePacket, Packet, RSPacket
from repro.core.protocol import NodeProtocol
from repro.core.engine import Channel, Delivery, RoundResult, Simulator
from repro.core.trace import ChannelCounters, TraceRecorder

__all__ = [
    "AdversaryConfig",
    "BroadcastTimeout",
    "Channel",
    "ChannelCounters",
    "Delivery",
    "FaultConfig",
    "FaultModel",
    "MessagePacket",
    "NodeProtocol",
    "NOISE",
    "Packet",
    "ProtocolError",
    "RadioNetwork",
    "ReproError",
    "RoundResult",
    "RSPacket",
    "SimulationError",
    "Simulator",
    "TopologyError",
    "TraceRecorder",
]
