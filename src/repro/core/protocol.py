"""The per-node protocol interface used by the distributed simulator.

A :class:`NodeProtocol` is the local algorithm running at one node. The
engine drives it with a strict round contract:

1. at the start of round ``r`` it calls :meth:`act` on every *active*
   protocol; a return of ``None`` means listen, a packet means broadcast;
2. after resolving collisions and faults it calls :meth:`on_receive` on each
   node that received a legitimate packet (noise and silence deliver
   nothing — the model guarantees nodes can't confuse noise with packets,
   and protocols in this model gain no information from distinguishing
   silence from noise).

``active`` is a performance contract, not a semantic one: a protocol that
reports ``active == False`` promises it would return ``None`` from ``act``
until some reception wakes it, letting the engine skip it. Listening is
unaffected — inactive nodes still receive.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.packets import Packet

__all__ = ["NodeProtocol"]


class NodeProtocol(abc.ABC):
    """Local algorithm at a single node.

    Subclasses receive their node id and network-wide public parameters via
    their constructor (the paper's known-topology algorithms legitimately
    use global structure; topology-oblivious ones like Decay take only n).
    """

    #: Performance hint: engine may skip act() while False (see module doc).
    active: bool = True

    @abc.abstractmethod
    def act(self, round_index: int) -> Optional[Packet]:
        """Decide this round's action: a packet to broadcast, or None."""

    @abc.abstractmethod
    def on_receive(self, round_index: int, packet: Packet, sender: int) -> None:
        """Handle a legitimate packet received from neighbor ``sender``."""

    def is_done(self) -> bool:
        """True once this node has completed its task (e.g. holds the
        message). Used by the engine's stop predicate. Default: False."""
        return False
