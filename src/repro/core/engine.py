"""The round-based simulation engine.

Two layers:

* :class:`Channel` — the physical layer. Given the set of broadcasts for one
  round it resolves collisions and faults and reports who received what.
  This is the single place where the model semantics of DESIGN.md §5 are
  implemented; both the distributed simulator and the centralized schedule
  executors (:mod:`repro.schedules`) are built on it.
* :class:`Simulator` — drives per-node :class:`~repro.core.protocol.NodeProtocol`
  instances against a channel until a stop predicate fires or a round budget
  is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.errors import ProtocolError, SimulationError
from repro.core.faults import FaultConfig, FaultModel
from repro.core.network import RadioNetwork
from repro.core.packets import Packet
from repro.core.protocol import NodeProtocol
from repro.core.trace import ChannelCounters, TraceRecorder
from repro.util.rng import RandomSource, spawn_rng

__all__ = ["Channel", "Delivery", "RoundResult", "Simulator"]


@dataclass(frozen=True)
class Delivery:
    """A successful reception: ``receiver`` got ``packet`` from ``sender``."""

    receiver: int
    sender: int
    packet: Packet


@dataclass
class RoundResult:
    """Everything that happened on the channel in one round."""

    round_index: int
    deliveries: list[Delivery] = field(default_factory=list)
    #: listeners whose unique reception was replaced by noise (either fault)
    noise_receivers: list[int] = field(default_factory=list)
    #: listeners that heard >= 2 broadcasters
    collision_receivers: list[int] = field(default_factory=list)
    #: broadcasters whose transmission was noise (sender faults only)
    faulty_senders: list[int] = field(default_factory=list)


class Channel:
    """The noisy radio channel over a fixed network.

    Parameters
    ----------
    network:
        Topology to simulate on.
    faults:
        Fault model and probability.
    rng:
        Seed / source for fault sampling.
    trace:
        Optional event recorder.
    """

    def __init__(
        self,
        network: RadioNetwork,
        faults: FaultConfig = FaultConfig.faultless(),
        rng: "int | RandomSource | None" = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.network = network
        self.faults = faults
        self.rng = spawn_rng(rng)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.counters = ChannelCounters()
        self.round_index = 0
        # scratch buffers reused across rounds
        self._hear_count = [0] * network.n
        self._hear_from = [0] * network.n
        self._touched: list[int] = []

    def transmit(self, actions: dict[int, Packet]) -> RoundResult:
        """Resolve one round given ``{broadcaster: packet}`` actions.

        Implements the model: a listener receives iff exactly one neighbor
        broadcasts; sender faults silence a broadcaster toward *all* its
        neighbors; receiver faults independently silence each unique
        reception. Returns the full :class:`RoundResult` and advances the
        round counter.
        """
        result = RoundResult(round_index=self.round_index)
        n = self.network.n
        for b in actions:
            if not isinstance(b, int) or not 0 <= b < n:
                raise SimulationError(
                    f"broadcast action for invalid node {b!r} (n={n})"
                )
        counters = self.counters
        counters.rounds += 1
        counters.broadcasts += len(actions)
        trace = self.trace
        tracing = trace.enabled

        if actions:
            # sample sender faults: one Bernoulli per broadcaster
            faulty: set[int] = set()
            if self.faults.model is FaultModel.SENDER and self.faults.p > 0.0:
                p = self.faults.p
                for b in actions:
                    if self.rng.bernoulli(p):
                        faulty.add(b)
                counters.sender_faults += len(faulty)
                result.faulty_senders.extend(faulty)
                if tracing:
                    for b in faulty:
                        trace.record(self.round_index, "sender_fault", b)

            hear_count = self._hear_count
            hear_from = self._hear_from
            touched = self._touched
            neighbors = self.network.neighbors

            for b in actions:
                if tracing:
                    trace.record(self.round_index, "broadcast", b)
                for v in neighbors[b]:
                    if hear_count[v] == 0:
                        touched.append(v)
                    hear_count[v] += 1
                    hear_from[v] = b

            receiver_faults = (
                self.faults.model is FaultModel.RECEIVER and self.faults.p > 0.0
            )
            for v in touched:
                count = hear_count[v]
                hear_count[v] = 0  # reset scratch as we go
                if v in actions:
                    continue  # a broadcasting node cannot receive
                if count >= 2:
                    counters.collisions += 1
                    result.collision_receivers.append(v)
                    if tracing:
                        trace.record(self.round_index, "collision", v)
                    continue
                sender = hear_from[v]
                if sender in faulty:
                    result.noise_receivers.append(v)
                    continue
                if receiver_faults and self.rng.bernoulli(self.faults.p):
                    counters.receiver_faults += 1
                    result.noise_receivers.append(v)
                    if tracing:
                        trace.record(self.round_index, "receiver_fault", v, sender)
                    continue
                counters.deliveries += 1
                result.deliveries.append(Delivery(v, sender, actions[sender]))
                if tracing:
                    trace.record(self.round_index, "deliver", v, sender)
            touched.clear()

        self.round_index += 1
        return result


class Simulator:
    """Drives per-node protocols over a :class:`Channel`.

    Parameters
    ----------
    network:
        Topology.
    protocols:
        One :class:`NodeProtocol` per node, in internal index order.
    faults:
        Fault configuration.
    rng:
        Randomness for the channel (fault sampling). Protocols hold their
        own sources so that channel noise and algorithmic randomness are
        independent streams.
    trace:
        Optional event recorder.
    """

    def __init__(
        self,
        network: RadioNetwork,
        protocols: Sequence[NodeProtocol],
        faults: FaultConfig = FaultConfig.faultless(),
        rng: "int | RandomSource | None" = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if len(protocols) != network.n:
            raise SimulationError(
                f"got {len(protocols)} protocols for {network.n} nodes"
            )
        self.network = network
        self.protocols = list(protocols)
        self.channel = Channel(network, faults, rng, trace)

    @property
    def counters(self) -> ChannelCounters:
        return self.channel.counters

    @property
    def round_index(self) -> int:
        return self.channel.round_index

    def step(self) -> RoundResult:
        """Run one round: poll active protocols, transmit, deliver."""
        actions: dict[int, Packet] = {}
        for node, protocol in enumerate(self.protocols):
            if not protocol.active:
                continue
            packet = protocol.act(self.channel.round_index)
            if packet is not None:
                actions[node] = packet
        result = self.channel.transmit(actions)
        for delivery in result.deliveries:
            self.protocols[delivery.receiver].on_receive(
                result.round_index, delivery.packet, delivery.sender
            )
        return result

    def run(
        self,
        max_rounds: int,
        stop: Optional[Callable[["Simulator"], bool]] = None,
    ) -> int:
        """Run until ``stop(self)`` is True or ``max_rounds`` elapse.

        Returns the number of rounds executed in this call. The default
        stop predicate is "every protocol reports is_done()".
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
        if stop is None:
            stop = lambda sim: all(p.is_done() for p in sim.protocols)
        executed = 0
        while executed < max_rounds:
            if stop(self):
                break
            self.step()
            executed += 1
        return executed

    def all_done(self) -> bool:
        """True iff every protocol reports completion."""
        return all(p.is_done() for p in self.protocols)

    def done_count(self) -> int:
        """Number of protocols reporting completion."""
        return sum(1 for p in self.protocols if p.is_done())
