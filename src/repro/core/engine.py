"""The round-based simulation engine.

Two layers:

* :class:`Channel` — the physical layer. Given the set of broadcasts for one
  round it resolves collisions and faults and reports who received what.
  This is the single place where the model semantics of DESIGN.md §5 are
  implemented; both the distributed simulator and the centralized schedule
  executors (:mod:`repro.schedules`) are built on it.
* :class:`Simulator` — drives per-node :class:`~repro.core.protocol.NodeProtocol`
  instances against a channel until a stop predicate fires or a round budget
  is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.errors import ProtocolError, SimulationError
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import Packet
from repro.core.protocol import NodeProtocol
from repro.core.trace import ChannelCounters, TraceRecorder
from repro.telemetry.metrics import METRICS as _METRICS
from repro.timeline.capture import maybe_bind_simulator
from repro.timeline.recorder import NULL_TIMELINE
from repro.util.rng import RandomSource, spawn_rng

__all__ = ["Channel", "Delivery", "RoundResult", "Simulator"]

# channel hot-seam metrics: registered once at import, bulk-incremented
# per round behind the single _METRICS.enabled attribute read
_M_ROUNDS = _METRICS.counter(
    "repro_channel_rounds_total", "channel rounds resolved"
)
_M_BROADCASTS = _METRICS.counter(
    "repro_channel_broadcasts_total", "broadcast actions offered to the channel"
)
_M_DELIVERIES = _METRICS.counter(
    "repro_channel_deliveries_total", "successful unique-neighbor deliveries"
)
_M_COLLISIONS = _METRICS.counter(
    "repro_channel_collisions_total", "listeners silenced by collisions"
)
_M_SENDER_FAULTS = _METRICS.counter(
    "repro_channel_sender_faults_total", "broadcaster-rounds that sent noise"
)
_M_RECEIVER_FAULTS = _METRICS.counter(
    "repro_channel_receiver_faults_total",
    "unique receptions replaced by noise at the receiver",
)


class Delivery(NamedTuple):
    """A successful reception: ``receiver`` got ``packet`` from ``sender``.

    A NamedTuple rather than a frozen dataclass: one is constructed per
    reception, and tuple construction is several times cheaper than
    ``object.__setattr__``-based frozen-dataclass init.
    """

    receiver: int
    sender: int
    packet: Packet


@dataclass
class RoundResult:
    """Everything that happened on the channel in one round."""

    round_index: int
    deliveries: list[Delivery] = field(default_factory=list)
    #: listeners whose unique reception was replaced by noise (either fault)
    noise_receivers: list[int] = field(default_factory=list)
    #: listeners that heard >= 2 broadcasters
    collision_receivers: list[int] = field(default_factory=list)
    #: broadcasters whose transmission was noise (sender faults only)
    faulty_senders: list[int] = field(default_factory=list)


class Channel:
    """The noisy radio channel over a fixed network.

    Round resolution has two interchangeable kernels:

    * a **vectorized** numpy kernel (the default) that gathers every
      broadcaster's CSR neighbor slice, computes hear-counts with
      ``np.bincount``, and draws all fault coins in bulk;
    * a **scalar reference** (:meth:`transmit_reference`) — the original
      per-node loop, kept as the executable specification. Both kernels
      consume the channel RNG identically (one bulk Bernoulli draw per
      fault stage, in ascending node order — bulk-stream v2, see
      PERFORMANCE.md), so for the same seed they agree delivery for
      delivery; the test suite cross-checks this property.

    Because the kernels are outcome-identical, ``kernel="auto"`` (the
    default) picks per round by the total neighbor-gather work: tiny
    rounds on tiny graphs stay on the scalar loop (numpy call latency
    would dominate), large rounds go vectorized. When tracing is enabled
    :meth:`transmit` routes through the scalar kernel so per-event
    records stay available; outcomes are unchanged either way.

    Parameters
    ----------
    network:
        Topology to simulate on.
    faults:
        Fault model and probability. Internally this is just the ``iid``
        adversary: the channel wraps it in
        :class:`~repro.adversary.iid.IIDFaults`, whose hooks draw the
        exact bulk coins this class drew before the adversary interface
        existed — legacy runs are byte-identical.
    rng:
        Seed / source for fault/adversary sampling.
    trace:
        Optional event recorder.
    kernel:
        ``"auto"`` (default), ``"vectorized"``, or ``"scalar"`` — force a
        resolution kernel, mainly for benchmarks and cross-checks.
    adversary:
        Optional corruption strategy replacing the i.i.d. fault coins: an
        :class:`~repro.adversary.base.Adversary` instance (bound to this
        channel; one channel per instance) or a serializable
        :class:`~repro.core.faults.AdversaryConfig` built via the
        registry. Mutually exclusive with a non-faultless ``faults``.
    """

    #: auto-dispatch threshold: vectorize once a round gathers this many
    #: (broadcaster, neighbor) pairs — below it numpy latency dominates
    VECTORIZE_MIN_WORK = 192

    def __init__(
        self,
        network: RadioNetwork,
        faults: FaultConfig = FaultConfig.faultless(),
        rng: "int | RandomSource | None" = None,
        trace: Optional[TraceRecorder] = None,
        kernel: str = "auto",
        adversary: "Adversary | AdversaryConfig | None" = None,
    ) -> None:
        if kernel not in ("auto", "vectorized", "scalar"):
            raise ValueError(
                f"kernel must be 'auto', 'vectorized', or 'scalar'; got {kernel!r}"
            )
        self.network = network
        self.faults = faults
        self.rng = spawn_rng(rng)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        # flight recorder (repro.timeline): the disabled default is a
        # module-level null object, so the round epilogue pays one
        # attribute read + branch when no timeline capture is armed
        self.timeline = NULL_TIMELINE
        self.kernel = kernel
        self.counters = ChannelCounters()
        self.round_index = 0
        # deferred import: repro.adversary builds on repro.core.faults, so
        # a module-level import here would be circular
        from repro.adversary.base import Adversary
        from repro.adversary.iid import IIDFaults

        if adversary is None:
            adversary = IIDFaults.from_fault_config(faults)
        else:
            if not faults.is_faultless:
                raise ValueError(
                    "pass either faults or an adversary, not both: the iid "
                    "adversary subsumes FaultConfig"
                )
            if isinstance(adversary, AdversaryConfig):
                from repro.adversary.registry import build_adversary

                adversary = build_adversary(adversary)
            elif not isinstance(adversary, Adversary):
                raise TypeError(
                    "adversary must be an Adversary or AdversaryConfig, got "
                    f"{type(adversary).__name__}"
                )
        adversary.bind(network, self.rng)
        self.adversary = adversary
        # scratch buffers reused across rounds (scalar reference kernel)
        self._hear_count = [0] * network.n
        self._hear_from = [0] * network.n
        self._touched: list[int] = []
        self._degree = [len(adj) for adj in network.neighbors]

    def transmit(self, actions: dict[int, Packet]) -> RoundResult:
        """Resolve one round given ``{broadcaster: packet}`` actions.

        Implements the model: a listener receives iff exactly one neighbor
        broadcasts; sender faults silence a broadcaster toward *all* its
        neighbors; receiver faults independently silence each unique
        reception. Returns the full :class:`RoundResult` and advances the
        round counter.
        """
        return self._run_round(actions, self._resolve_auto)

    def transmit_reference(self, actions: dict[int, Packet]) -> RoundResult:
        """Scalar reference kernel: same semantics, same RNG stream.

        Produces a :class:`RoundResult` identical to :meth:`transmit` for
        the same channel state; exists as the executable specification the
        vectorized kernel is property-checked against, and as the
        baseline for `repro bench`.
        """
        return self._run_round(actions, self._resolve_scalar)

    # -- kernel internals ---------------------------------------------------

    def _run_round(self, actions: dict[int, Packet], resolver) -> RoundResult:
        """Shared prologue/epilogue: validate, count, resolve, advance."""
        n = self.network.n
        for b in actions:
            if not isinstance(b, int) or not 0 <= b < n:
                raise SimulationError(
                    f"broadcast action for invalid node {b!r} (n={n})"
                )
        result = RoundResult(round_index=self.round_index)
        counters = self.counters
        metrics_on = _METRICS.enabled
        # receiver faults are folded into result.noise_receivers together
        # with sender-silenced listeners; the exact per-round split only
        # exists as a counter delta
        faults_before = counters.receiver_faults if metrics_on else 0
        counters.rounds += 1
        counters.broadcasts += len(actions)
        if actions:
            resolver(actions, result)
        self.round_index += 1
        timeline = self.timeline
        if timeline.enabled:
            timeline.on_round(result.round_index, counters, result.deliveries)
        if metrics_on:
            _M_ROUNDS.inc()
            if actions:
                _M_BROADCASTS.inc(len(actions))
                if result.deliveries:
                    _M_DELIVERIES.inc(len(result.deliveries))
                if result.collision_receivers:
                    _M_COLLISIONS.inc(len(result.collision_receivers))
                if result.faulty_senders:
                    _M_SENDER_FAULTS.inc(len(result.faulty_senders))
                receiver_faults = counters.receiver_faults - faults_before
                if receiver_faults:
                    _M_RECEIVER_FAULTS.inc(receiver_faults)
        return result

    def _resolve_auto(self, actions: dict[int, Packet], result: RoundResult) -> None:
        """Kernel dispatch: honor ``self.kernel``, else pick by gather work."""
        if self.trace.enabled or self.kernel == "scalar":
            resolver = self._resolve_scalar
        elif self.kernel == "vectorized":
            resolver = self._resolve_vectorized
        else:
            degree = self._degree
            work = sum(degree[b] for b in actions)
            resolver = (
                self._resolve_vectorized
                if work >= self.VECTORIZE_MIN_WORK
                else self._resolve_scalar
            )
        resolver(actions, result)

    def _resolve_vectorized(
        self, actions: dict[int, Packet], result: RoundResult
    ) -> None:
        """Array kernel over the network's CSR adjacency.

        Adversary hooks fire in the fixed order ``begin_round`` ->
        ``sender_mask`` -> ``edge_alive`` -> ``receiver_mask`` — the same
        order, with the same ascending-id inputs, as the scalar kernel,
        so any adversary that draws randomness only inside its hooks is
        kernel-independent.
        """
        network = self.network
        n = network.n
        counters = self.counters
        adversary = self.adversary
        bs = np.fromiter(sorted(actions), dtype=np.int64, count=len(actions))

        if adversary.needs_begin_round:
            adversary.begin_round(self.round_index, bs)
        smask = adversary.sender_mask(bs)
        faulty = bs[smask] if smask is not None else bs[:0]
        if faulty.size:
            counters.sender_faults += int(faulty.size)
            result.faulty_senders.extend(faulty.tolist())

        # gather all broadcasters' neighbor slices in one shot
        indptr = network.indptr
        starts = indptr[bs].astype(np.int64)
        lens = indptr[bs + 1].astype(np.int64) - starts
        total = int(lens.sum())
        seg_starts = np.cumsum(lens) - lens
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - seg_starts, lens
        )
        heard = network.indices[flat]
        senders = np.repeat(bs, lens)

        if adversary.has_edge_dynamics:
            # the gather above already computed the flat slot array; hand
            # it over so the adversary does not rebuild it
            alive = adversary.edge_alive(bs, flat)
            if alive is not None:
                heard = heard[alive]
                senders = senders[alive]

        hear_count = np.bincount(heard, minlength=n)
        sender_of = np.zeros(n, dtype=np.int64)
        sender_of[heard] = senders  # only read where hear_count == 1

        listening = np.ones(n, dtype=bool)
        listening[bs] = False  # a broadcasting node cannot receive

        collided = np.nonzero(listening & (hear_count >= 2))[0]
        if collided.size:
            counters.collisions += int(collided.size)
            result.collision_receivers.extend(collided.tolist())

        unique = np.nonzero(listening & (hear_count == 1))[0]
        unique_senders = sender_of[unique]

        if faulty.size:
            faulty_lookup = np.zeros(n, dtype=bool)
            faulty_lookup[faulty] = True
            silenced = faulty_lookup[unique_senders]
            result.noise_receivers.extend(unique[silenced].tolist())
            unique = unique[~silenced]
            unique_senders = unique_senders[~silenced]

        rmask = adversary.receiver_mask(unique, unique_senders)
        if rmask is not None and rmask.any():
            counters.receiver_faults += int(rmask.sum())
            result.noise_receivers.extend(unique[rmask].tolist())
            unique = unique[~rmask]
            unique_senders = unique_senders[~rmask]

        counters.deliveries += int(unique.size)
        deliveries = result.deliveries
        for v, s in zip(unique.tolist(), unique_senders.tolist()):
            deliveries.append(Delivery(v, s, actions[s]))

    def _resolve_scalar(
        self, actions: dict[int, Packet], result: RoundResult
    ) -> None:
        """Per-node reference kernel (also serves the tracing path).

        Calls the adversary hooks at the same points, in the same order,
        with the same ascending-id values as the vectorized kernel (see
        :meth:`_resolve_vectorized`), so both kernels consume one RNG
        stream and agree delivery for delivery.
        """
        counters = self.counters
        trace = self.trace
        tracing = trace.enabled
        adversary = self.adversary
        broadcasters = sorted(actions)

        if tracing:
            for b in broadcasters:
                trace.record(self.round_index, "broadcast", b)

        if adversary.needs_begin_round:
            adversary.begin_round(
                self.round_index, np.asarray(broadcasters, dtype=np.int64)
            )

        faulty: set[int] = set()
        smask = adversary.sender_mask(broadcasters)
        if smask is not None:
            faulty = {b for b, hit in zip(broadcasters, smask) if hit}
            counters.sender_faults += len(faulty)
            result.faulty_senders.extend(sorted(faulty))
            if tracing:
                for b in sorted(faulty):
                    trace.record(self.round_index, "sender_fault", b)

        hear_count = self._hear_count
        hear_from = self._hear_from
        touched = self._touched
        neighbors = self.network.neighbors
        alive = (
            adversary.edge_alive(np.asarray(broadcasters, dtype=np.int64))
            if adversary.has_edge_dynamics
            else None
        )
        if alive is None:
            for b in broadcasters:
                for v in neighbors[b]:
                    if hear_count[v] == 0:
                        touched.append(v)
                    hear_count[v] += 1
                    hear_from[v] = b
        else:
            # slots walk each broadcaster's CSR slice in ascending-b
            # order — the exact flat order the vectorized gather uses
            slot = 0
            for b in broadcasters:
                for v in neighbors[b]:
                    if alive[slot]:
                        if hear_count[v] == 0:
                            touched.append(v)
                        hear_count[v] += 1
                        hear_from[v] = b
                    slot += 1

        # classify listeners in ascending id order; receiver corruption
        # coins are drawn in one bulk call over the eligible (unique,
        # non-silenced) receivers so the stream matches the vectorized
        # kernel
        touched.sort()
        eligible: list[int] = []
        eligible_senders: list[int] = []
        for v in touched:
            count = hear_count[v]
            hear_count[v] = 0  # reset scratch as we go
            if v in actions:
                continue  # a broadcasting node cannot receive
            if count >= 2:
                counters.collisions += 1
                result.collision_receivers.append(v)
                if tracing:
                    trace.record(self.round_index, "collision", v)
                continue
            if hear_from[v] in faulty:
                result.noise_receivers.append(v)
                continue
            eligible.append(v)
            eligible_senders.append(hear_from[v])
        touched.clear()

        rmask = adversary.receiver_mask(eligible, eligible_senders)
        for i, v in enumerate(eligible):
            sender = eligible_senders[i]
            if rmask is not None and rmask[i]:
                counters.receiver_faults += 1
                result.noise_receivers.append(v)
                if tracing:
                    trace.record(self.round_index, "receiver_fault", v, sender)
                continue
            counters.deliveries += 1
            result.deliveries.append(Delivery(v, sender, actions[sender]))
            if tracing:
                trace.record(self.round_index, "deliver", v, sender)


class Simulator:
    """Drives per-node protocols over a :class:`Channel`.

    Parameters
    ----------
    network:
        Topology.
    protocols:
        One :class:`NodeProtocol` per node, in internal index order.
    faults:
        Fault configuration.
    rng:
        Randomness for the channel (fault sampling). Protocols hold their
        own sources so that channel noise and algorithmic randomness are
        independent streams.
    trace:
        Optional event recorder.
    adversary:
        Optional channel corruption strategy (see :class:`Channel`);
        mutually exclusive with a non-faultless ``faults``.
    channel:
        Optional :class:`~repro.mac.config.MacConfig`: run on the
        contention MAC channel (:class:`~repro.mac.channel.ContentionChannel`)
        instead of the default collision channel. ``None`` (default)
        keeps the paper's channel, bit-for-bit.
    """

    def __init__(
        self,
        network: RadioNetwork,
        protocols: Sequence[NodeProtocol],
        faults: FaultConfig = FaultConfig.faultless(),
        rng: "int | RandomSource | None" = None,
        trace: Optional[TraceRecorder] = None,
        kernel: str = "auto",
        adversary: "Adversary | AdversaryConfig | None" = None,
        channel: "MacConfig | None" = None,
    ) -> None:
        if len(protocols) != network.n:
            raise SimulationError(
                f"got {len(protocols)} protocols for {network.n} nodes"
            )
        self.network = network
        self.protocols = list(protocols)
        if channel is None:
            self.channel = Channel(
                network, faults, rng, trace, kernel=kernel, adversary=adversary
            )
        else:
            # deferred import: repro.mac.channel subclasses Channel, so a
            # module-level import here would be circular
            from repro.mac.channel import ContentionChannel

            self.channel = ContentionChannel(
                network,
                faults,
                rng,
                trace,
                kernel=kernel,
                adversary=adversary,
                config=channel,
            )
        # an armed timeline capture (repro.timeline.capture) binds its
        # flight recorder to the first simulator built inside the context
        maybe_bind_simulator(self)

    @property
    def counters(self) -> ChannelCounters:
        return self.channel.counters

    @property
    def round_index(self) -> int:
        return self.channel.round_index

    def step(self) -> RoundResult:
        """Run one round: poll active protocols, transmit, deliver."""
        actions: dict[int, Packet] = {}
        for node, protocol in enumerate(self.protocols):
            if not protocol.active:
                continue
            packet = protocol.act(self.channel.round_index)
            if packet is not None:
                actions[node] = packet
        result = self.channel.transmit(actions)
        for delivery in result.deliveries:
            self.protocols[delivery.receiver].on_receive(
                result.round_index, delivery.packet, delivery.sender
            )
        return result

    def run(
        self,
        max_rounds: int,
        stop: Optional[Callable[["Simulator"], bool]] = None,
    ) -> int:
        """Run until ``stop(self)`` is True or ``max_rounds`` elapse.

        Returns the number of rounds executed in this call. The default
        stop predicate is "every protocol reports is_done()".
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
        if stop is None:
            stop = lambda sim: all(p.is_done() for p in sim.protocols)
        executed = 0
        while executed < max_rounds:
            if stop(self):
                break
            self.step()
            executed += 1
        return executed

    def all_done(self) -> bool:
        """True iff every protocol reports completion."""
        return all(p.is_done() for p in self.protocols)

    def done_count(self) -> int:
        """Number of protocols reporting completion."""
        return sum(1 for p in self.protocols if p.is_done())
