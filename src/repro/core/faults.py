"""Fault models: the paper's sender-fault and receiver-fault variants.

The noisy radio network model augments the classic model with exactly one of
two fault types (Section 3.1):

* ``SENDER``  — each broadcasting node independently transmits noise with
  probability ``p``; every neighbor that would have received its packet
  receives noise instead.
* ``RECEIVER`` — each listening node with exactly one broadcasting neighbor
  independently receives noise with probability ``p``.

``NONE`` recovers the classic (faultless) model of Chlamtac and Kutten.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.util.validation import check_probability

__all__ = ["FaultModel", "FaultConfig", "AdversaryConfig"]


class FaultModel(enum.Enum):
    """Which of the two noise mechanisms is active (or neither)."""

    NONE = "none"
    SENDER = "sender"
    RECEIVER = "receiver"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FaultConfig:
    """A fault model together with its fault probability.

    Parameters
    ----------
    model:
        Which fault mechanism is active.
    p:
        Fault probability in [0, 1). Ignored (and required to be 0) when
        ``model`` is ``NONE``.
    """

    model: FaultModel = FaultModel.NONE
    p: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.p, "p")
        if self.model is FaultModel.NONE and self.p != 0.0:
            raise ValueError(
                f"FaultModel.NONE requires p == 0, got p={self.p}"
            )

    @classmethod
    def faultless(cls) -> "FaultConfig":
        """The classic model: no faults."""
        return cls(FaultModel.NONE, 0.0)

    @classmethod
    def sender(cls, p: float) -> "FaultConfig":
        """Sender faults with probability ``p``."""
        return cls(FaultModel.SENDER, p)

    @classmethod
    def receiver(cls, p: float) -> "FaultConfig":
        """Receiver faults with probability ``p``."""
        return cls(FaultModel.RECEIVER, p)

    @property
    def is_faultless(self) -> bool:
        return self.model is FaultModel.NONE or self.p == 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultConfig":
        """Inverse of the ``{"model": ..., "p": ...}`` scenario-dict form."""
        return cls(
            FaultModel(data.get("model", "none")), float(data.get("p", 0.0))
        )

    def __str__(self) -> str:
        if self.is_faultless:
            return "faultless"
        return f"{self.model.value}-faults(p={self.p})"


@dataclass(frozen=True)
class AdversaryConfig:
    """A declarative reference to a registered adversary model.

    ``kind`` names an entry in :mod:`repro.adversary.registry` (``iid``,
    ``gilbert_elliott``, ``budgeted_jammer``, ``edge_churn``, ...) and
    ``params`` overrides that model's declared defaults. The config is
    frozen and JSON-serializable so scenarios and run reports can carry
    it; :func:`repro.adversary.build_adversary` turns it into a fresh
    stateful instance per run. The ``iid`` kind is the legacy
    :class:`FaultConfig` expressed as an adversary — scenarios
    canonicalize it back into their ``faults`` field, so both spellings
    produce byte-identical reports.

    This class lives beside :class:`FaultConfig` (rather than in
    :mod:`repro.adversary`) so that describing a run never imports the
    strategy implementations; the registry validates ``kind`` and
    ``params`` when the adversary is actually built or a scenario is
    constructed.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise TypeError(
                f"adversary kind must be a non-empty string, got {self.kind!r}"
            )
        if not isinstance(self.params, Mapping):
            raise TypeError(
                f"adversary params must be a mapping, got "
                f"{type(self.params).__name__}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversaryConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(kind=data["kind"], params=data.get("params", {}))

    def __str__(self) -> str:
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"
