"""Fault models: the paper's sender-fault and receiver-fault variants.

The noisy radio network model augments the classic model with exactly one of
two fault types (Section 3.1):

* ``SENDER``  — each broadcasting node independently transmits noise with
  probability ``p``; every neighbor that would have received its packet
  receives noise instead.
* ``RECEIVER`` — each listening node with exactly one broadcasting neighbor
  independently receives noise with probability ``p``.

``NONE`` recovers the classic (faultless) model of Chlamtac and Kutten.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_probability

__all__ = ["FaultModel", "FaultConfig"]


class FaultModel(enum.Enum):
    """Which of the two noise mechanisms is active (or neither)."""

    NONE = "none"
    SENDER = "sender"
    RECEIVER = "receiver"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FaultConfig:
    """A fault model together with its fault probability.

    Parameters
    ----------
    model:
        Which fault mechanism is active.
    p:
        Fault probability in [0, 1). Ignored (and required to be 0) when
        ``model`` is ``NONE``.
    """

    model: FaultModel = FaultModel.NONE
    p: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.p, "p")
        if self.model is FaultModel.NONE and self.p != 0.0:
            raise ValueError(
                f"FaultModel.NONE requires p == 0, got p={self.p}"
            )

    @classmethod
    def faultless(cls) -> "FaultConfig":
        """The classic model: no faults."""
        return cls(FaultModel.NONE, 0.0)

    @classmethod
    def sender(cls, p: float) -> "FaultConfig":
        """Sender faults with probability ``p``."""
        return cls(FaultModel.SENDER, p)

    @classmethod
    def receiver(cls, p: float) -> "FaultConfig":
        """Receiver faults with probability ``p``."""
        return cls(FaultModel.RECEIVER, p)

    @property
    def is_faultless(self) -> bool:
        return self.model is FaultModel.NONE or self.p == 0.0

    def __str__(self) -> str:
        if self.is_faultless:
            return "faultless"
        return f"{self.model.value}-faults(p={self.p})"
