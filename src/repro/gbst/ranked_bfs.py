"""Ranked BFS trees (Section 3.4.2).

A ranked BFS tree is a BFS tree rooted at the source where every node
carries an integral *rank*, assigned inductively:

* every leaf has rank 1;
* a non-leaf whose children have maximum rank r gets rank r if **exactly
  one** child attains r, and rank r+1 otherwise.

This is the Strahler-number rule; Lemma 7 (Gaber-Mansour) bounds the
maximum rank by ``ceil(log2 n)``, which tests verify property-based.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.network import RadioNetwork

__all__ = ["RankedBFSTree", "build_ranked_bfs_tree", "compute_ranks"]


class RankedBFSTree:
    """A BFS tree over a :class:`RadioNetwork` with Gaber-Mansour ranks.

    Attributes
    ----------
    network:
        The underlying radio network.
    parent:
        ``parent[v]`` is v's tree parent (internal index), -1 for the root.
    children:
        ``children[v]`` lists v's tree children.
    level:
        BFS level of each node (distance from the source).
    rank:
        Gaber-Mansour rank of each node.
    """

    def __init__(self, network: RadioNetwork, parent: Sequence[int]) -> None:
        n = network.n
        if len(parent) != n:
            raise ValueError(f"parent vector has {len(parent)} entries for n={n}")
        levels = network.levels()
        root = network.source
        if parent[root] != -1:
            raise ValueError("the source must have parent -1")
        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = parent[v]
            if v == root:
                continue
            if not 0 <= p < n:
                raise ValueError(f"node {v} has invalid parent {p}")
            if levels[p] != levels[v] - 1:
                raise ValueError(
                    f"parent edge {p}->{v} is not a BFS edge "
                    f"(levels {levels[p]} -> {levels[v]})"
                )
            if v not in network.neighbors[p]:
                raise ValueError(f"parent edge {p}->{v} is not a graph edge")
            children[p].append(v)

        self.network = network
        self.parent = list(parent)
        self.children = children
        self.level = levels
        self.rank = compute_ranks(self.parent, children, root, levels)

    @property
    def root(self) -> int:
        return self.network.source

    @property
    def max_rank(self) -> int:
        return max(self.rank)

    def is_fast(self, v: int) -> bool:
        """A node is *fast* if some tree child has the same rank as it."""
        r = self.rank[v]
        return any(self.rank[c] == r for c in self.children[v])

    def fast_child(self, v: int) -> Optional[int]:
        """The unique same-rank child of a fast node (None if not fast).

        The rank rule guarantees at most one child attains the parent's
        rank, so "the" is justified.
        """
        r = self.rank[v]
        for c in self.children[v]:
            if self.rank[c] == r:
                return c
        return None

    def fast_nodes(self) -> list[int]:
        """All fast nodes of the tree."""
        return [v for v in range(self.network.n) if self.is_fast(v)]

    def tree_path(self, v: int) -> list[int]:
        """The tree path from the root to v (inclusive)."""
        path = [v]
        while self.parent[path[-1]] != -1:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path


def compute_ranks(
    parent: Sequence[int],
    children: Sequence[Sequence[int]],
    root: int,
    levels: Sequence[int],
) -> list[int]:
    """Compute Gaber-Mansour ranks bottom-up (deepest level first)."""
    n = len(parent)
    order = sorted(range(n), key=lambda v: -levels[v])
    rank = [0] * n
    for v in order:
        kids = children[v]
        if not kids:
            rank[v] = 1
            continue
        best = max(rank[c] for c in kids)
        at_best = sum(1 for c in kids if rank[c] == best)
        rank[v] = best if at_best == 1 else best + 1
    return rank


def build_ranked_bfs_tree(
    network: RadioNetwork,
    parent_choice: Optional[Callable[[int, list[int]], int]] = None,
) -> RankedBFSTree:
    """Build a ranked BFS tree with a pluggable parent-selection rule.

    Parameters
    ----------
    network:
        The network to span.
    parent_choice:
        ``parent_choice(v, candidates)`` picks v's parent among its
        previous-level neighbors. Defaults to the candidate with the most
        previous-level "exposure" (highest degree), which empirically
        concentrates fast stretches and reduces GBST repair work.
    """
    levels = network.levels()
    if parent_choice is None:

        def parent_choice(v: int, candidates: list[int]) -> int:
            return max(candidates, key=lambda u: (network.degree(u), -u))

    parent = [-1] * network.n
    for v in range(network.n):
        if v == network.source:
            continue
        candidates = [
            u for u in network.neighbors[v] if levels[u] == levels[v] - 1
        ]
        if not candidates:
            raise ValueError(
                f"node {v} has no previous-level neighbor; network invariant broken"
            )
        parent[v] = parent_choice(v, candidates)
    return RankedBFSTree(network, parent)
