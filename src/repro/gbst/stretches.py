"""Fast-stretch decomposition of GBST paths (Section 3.4.2).

A *fast edge* joins a fast node to its same-rank child; a *fast stretch* is
a maximal chain of fast edges (all of one rank). Ranks are non-increasing
from the root towards the leaves, so any root-to-node tree path decomposes
into at most ``r_max = O(log n)`` fast stretches separated by non-fast
edges — the structure both FASTBC analyses (Lemmas 8, 10 and Theorem 11)
walk along.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gbst.ranked_bfs import RankedBFSTree

__all__ = ["FastStretch", "fast_stretches", "path_stretch_decomposition"]


@dataclass(frozen=True)
class FastStretch:
    """A maximal chain of fast edges of one rank.

    ``nodes`` runs root-side to leaf-side; ``len(nodes) >= 2``; every
    consecutive pair is a fast edge.
    """

    nodes: tuple[int, ...]
    rank: int

    @property
    def length(self) -> int:
        """Number of fast edges in the stretch."""
        return len(self.nodes) - 1

    @property
    def head(self) -> int:
        return self.nodes[0]

    @property
    def tail(self) -> int:
        return self.nodes[-1]


def fast_stretches(tree: RankedBFSTree) -> list[FastStretch]:
    """All maximal fast stretches of the tree."""
    in_stretch_continuation: set[int] = set()
    for v in tree.fast_nodes():
        child = tree.fast_child(v)
        assert child is not None
        in_stretch_continuation.add(child)

    stretches: list[FastStretch] = []
    for v in tree.fast_nodes():
        if v in in_stretch_continuation:
            continue  # not a stretch head: some fast parent feeds it
        nodes = [v]
        current = v
        while True:
            nxt = tree.fast_child(current)
            if nxt is None:
                break
            nodes.append(nxt)
            current = nxt
        stretches.append(FastStretch(nodes=tuple(nodes), rank=tree.rank[v]))
    return stretches


def path_stretch_decomposition(
    tree: RankedBFSTree, target: int
) -> list[tuple[str, list[int]]]:
    """Decompose the root-to-``target`` path into stretches and slow edges.

    Returns segments in root-to-target order, each tagged ``"fast"`` (a
    maximal run of fast edges, node list of length >= 2) or ``"slow"`` (a
    single non-fast edge, node list of length exactly 2). The number of
    fast segments is at most ``tree.max_rank`` because ranks along the
    path are non-increasing.
    """
    path = tree.tree_path(target)
    segments: list[tuple[str, list[int]]] = []
    i = 0
    while i < len(path) - 1:
        u, v = path[i], path[i + 1]
        if tree.rank[u] == tree.rank[v]:
            run = [u, v]
            j = i + 1
            while (
                j < len(path) - 1 and tree.rank[path[j]] == tree.rank[path[j + 1]]
            ):
                run.append(path[j + 1])
                j += 1
            segments.append(("fast", run))
            i = j
        else:
            segments.append(("slow", [u, v]))
            i += 1
    return segments
