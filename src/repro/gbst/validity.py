"""The GBST validity predicate (Figure 1's property).

The paper states the condition as: *no two distinct nodes on the same level
and of the same rank r have two distinct T-parents both with rank r*, and
Figure 1 shows that a **graph** edge (the dashed yellow one) is what breaks
the property. Read operationally — which is how the FASTBC analysis uses
it — the condition guarantees that the simultaneous fast-round broadcasts
of same-rank fast nodes at the same level never collide at a fast child:

    For every fast edge (p, c) (p fast with rank r, c its same-rank child),
    c has no G-neighbor q != p at p's level that is also a fast node of
    rank r.

This is exactly non-interference along fast stretches: during a fast round
all broadcasting nodes at the same level share one rank, so the only way a
wave can be interrupted is a *second* same-rank fast node adjacent (in G)
to the wave's next hop. Nodes of different ranks transmit >= 6 levels apart
and never interfere on a BFS tree (Section 3.4.2).

The purely tree-structural reading of the sentence would declare even a
two-bristle broom (where no interference is possible — every node has a
single up-neighbor) invalid, so we implement the operational reading and
document the discrepancy here; tests cover a Figure-1-style example where
a single graph edge flips validity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gbst.ranked_bfs import RankedBFSTree

__all__ = ["GBSTViolation", "gbst_violations", "is_gbst"]


@dataclass(frozen=True)
class GBSTViolation:
    """A fast child adjacent (in G) to a rival same-rank fast node.

    ``child`` is the fast child of ``parent``; ``rival`` is a distinct fast
    node of the same rank at the parent's level that is a graph neighbor of
    ``child`` — so the rival's fast-round broadcast collides with the
    parent's at the child.
    """

    child: int
    parent: int
    rival: int
    rank: int
    level: int


def gbst_violations(tree: RankedBFSTree) -> list[GBSTViolation]:
    """All interference violations of the GBST property (empty iff GBST)."""
    network = tree.network
    level = tree.level
    rank = tree.rank

    # fast nodes indexed by (level, rank) for O(1) rival lookups
    fast_at: dict[tuple[int, int], set[int]] = {}
    for v in tree.fast_nodes():
        fast_at.setdefault((level[v], rank[v]), set()).add(v)

    violations: list[GBSTViolation] = []
    for key, fast_set in fast_at.items():
        parent_level, r = key
        for p in fast_set:
            child = tree.fast_child(p)
            assert child is not None  # p is fast
            for q in network.neighbors[child]:
                if q == p:
                    continue
                if level[q] == parent_level and q in fast_set:
                    violations.append(
                        GBSTViolation(
                            child=child,
                            parent=p,
                            rival=q,
                            rank=r,
                            level=parent_level,
                        )
                    )
    return violations


def is_gbst(tree: RankedBFSTree) -> bool:
    """True iff the ranked BFS tree satisfies the GBST property."""
    return not gbst_violations(tree)
