"""Ranked BFS trees and gathering-broadcasting spanning trees (GBSTs).

Implements Section 3.4.2's structural machinery:

* :class:`~repro.gbst.ranked_bfs.RankedBFSTree` — a BFS tree with
  Gaber-Mansour ranks (leaves rank 1; a node is rank r if exactly one child
  attains the max child rank r, else r+1), satisfying the Lemma 7 bound
  ``r_max <= ceil(log2 n)``.
* :func:`~repro.gbst.validity.is_gbst` — the gathering-broadcasting
  validity predicate (the property Figure 1 illustrates).
* :func:`~repro.gbst.gbst.build_gbst` — constructs a GBST by BFS parent
  selection plus a verified repair loop.
* :mod:`~repro.gbst.stretches` — decomposition of tree paths into fast
  stretches, used by FASTBC and Robust FASTBC.
"""

from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import RankedBFSTree, build_ranked_bfs_tree
from repro.gbst.stretches import fast_stretches, path_stretch_decomposition
from repro.gbst.validity import gbst_violations, is_gbst

__all__ = [
    "RankedBFSTree",
    "build_gbst",
    "build_ranked_bfs_tree",
    "fast_stretches",
    "gbst_violations",
    "is_gbst",
    "path_stretch_decomposition",
]
