"""GBST construction: ranked BFS + verified repair loop.

Gąsieniec et al. [22] prove every graph admits a gathering-broadcasting
spanning tree. Their construction is intricate; this module implements a
pragmatic constructor with a verified output:

1. build a ranked BFS tree with a parent-choice heuristic that concentrates
   children on high-degree parents (fewer parallel fast stretches);
2. while violations exist (see :mod:`repro.gbst.validity`), re-parent the
   violating fast child onto its rival fast node — this merges the two
   competing waves into one stretch — and recompute ranks;
3. stop when valid or when the iteration budget is exhausted.

The returned tree carries a ``valid`` flag. On every topology family
shipped with the library the loop converges (tests assert this); on a
hypothetical adversarial input where it does not, FASTBC still broadcasts
correctly — the Decay half of the schedule alone suffices — but loses its
diameter-linearity guarantee, matching how the paper's analysis decomposes
into slow and fast rounds. This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import RadioNetwork
from repro.gbst.ranked_bfs import RankedBFSTree, build_ranked_bfs_tree
from repro.gbst.validity import gbst_violations

__all__ = ["GBSTResult", "build_gbst"]


@dataclass
class GBSTResult:
    """A constructed tree plus construction diagnostics."""

    tree: RankedBFSTree
    valid: bool
    repair_iterations: int
    remaining_violations: int


def build_gbst(
    network: RadioNetwork, max_repair_iterations: int = 200
) -> GBSTResult:
    """Construct a GBST for ``network`` (see module docstring).

    Parameters
    ----------
    network:
        The network to span.
    max_repair_iterations:
        Budget for the repair loop; each iteration fixes every currently
        known violation once and recomputes ranks.
    """
    tree = build_ranked_bfs_tree(network)
    iterations = 0
    violations = gbst_violations(tree)
    seen_parent_vectors = {tuple(tree.parent)}

    while violations and iterations < max_repair_iterations:
        iterations += 1
        parent = list(tree.parent)
        changed = False
        handled_children: set[int] = set()
        for violation in violations:
            if violation.child in handled_children:
                continue
            # Merge the rival wave: make the child ride the rival's stretch.
            parent[violation.child] = violation.rival
            handled_children.add(violation.child)
            changed = True
        if not changed:
            break
        key = tuple(parent)
        if key in seen_parent_vectors:
            # re-parenting cycled; stop rather than loop forever
            break
        seen_parent_vectors.add(key)
        tree = RankedBFSTree(network, parent)
        violations = gbst_violations(tree)

    return GBSTResult(
        tree=tree,
        valid=not violations,
        repair_iterations=iterations,
        remaining_violations=len(violations),
    )
