"""A Figure-1-style example: one graph, two BFS trees, one valid GBST.

The paper's Figure 1 shows a single graph with two ranked BFS trees: in
1(a) a graph edge (dashed yellow) connects a fast child of one stretch to a
rival fast node of the same rank and level, breaking the GBST property; in
1(b) a different parent assignment avoids the interference.

The exact 18-node drawing is not recoverable from the paper text, so this
module ships a minimal example with the same structure: two parallel
rank-1 chains hanging off the source, plus one cross edge ``(b1, a2)``.
Parenting ``a2`` under ``a1`` leaves two rival same-rank fast nodes
(``a1`` and ``b1``) adjacent to the fast child ``a2`` — not a GBST.
Re-parenting ``a2`` under ``b1`` merges the competing waves and yields a
valid GBST.
"""

from __future__ import annotations

import networkx as nx

from repro.core.network import RadioNetwork
from repro.gbst.ranked_bfs import RankedBFSTree

__all__ = [
    "figure1_network",
    "figure1_tree_invalid",
    "figure1_tree_valid",
]

_CHAIN_LENGTH = 4


def figure1_network() -> RadioNetwork:
    """The shared graph: two chains from the source plus one cross edge."""
    g = nx.Graph()
    previous_a, previous_b = "s", "s"
    for i in range(1, _CHAIN_LENGTH + 1):
        g.add_edge(previous_a, f"a{i}")
        g.add_edge(previous_b, f"b{i}")
        previous_a, previous_b = f"a{i}", f"b{i}"
    g.add_edge("b1", "a2")  # the "yellow" interference edge
    return RadioNetwork(g, source="s", name="figure1")


def _parent_vector(network: RadioNetwork, parent_of: dict[str, str]) -> list[int]:
    parent = [-1] * network.n
    for child, par in parent_of.items():
        parent[network.index_of(child)] = network.index_of(par)
    return parent


def figure1_tree_invalid() -> RankedBFSTree:
    """Tree (a): ``a2`` parented under ``a1`` — interference at ``a2``."""
    network = figure1_network()
    parent_of = {"a1": "s", "b1": "s", "a2": "a1", "b2": "b1"}
    for i in range(3, _CHAIN_LENGTH + 1):
        parent_of[f"a{i}"] = f"a{i-1}"
        parent_of[f"b{i}"] = f"b{i-1}"
    return RankedBFSTree(network, _parent_vector(network, parent_of))


def figure1_tree_valid() -> RankedBFSTree:
    """Tree (b): ``a2`` parented under ``b1`` — waves merged, valid GBST."""
    network = figure1_network()
    parent_of = {"a1": "s", "b1": "s", "a2": "b1", "b2": "b1"}
    for i in range(3, _CHAIN_LENGTH + 1):
        parent_of[f"a{i}"] = f"a{i-1}"
        parent_of[f"b{i}"] = f"b{i-1}"
    return RankedBFSTree(network, _parent_vector(network, parent_of))
