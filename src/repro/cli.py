"""Command-line interface: list registries, run experiments, sweep scenarios.

Usage::

    repro list
    repro list --adversaries
    repro list --format json
    repro run E4 --scale full --seed 1
    repro run all --scale smoke
    repro run E10 --format json
    repro run E20 --adversary budgeted_jammer --adversary-param per_round=2
    repro sweep --algorithms decay,fastbc --topology path --n 64 \\
        --fault-model receiver --p 0.3 --seeds 0:5 --processes 4
    repro sweep --algorithms decay --adversary gilbert_elliott \\
        --adversary-param p_bad=0.9 --seeds 0:3
    repro sweep --algorithms decay,rlnc_decay --seeds 0:100 \\
        --store results.db --resume
    repro store results.db
    repro store results.db --export decay.json --algorithm decay
    repro analyze aggregate results.db --by algorithm,n
    repro analyze fit results.db --by algorithm --metric rounds
    repro analyze compare results.db --arm-a algorithm=decay \\
        --arm-b algorithm=rlnc_decay --metric rounds_per_message
    repro analyze adaptive results.db --algorithms decay,fastbc \\
        --n 32,64 --fault-model receiver --p 0.3 \\
        --target-halfwidth 10 --max-seeds 32
    repro serve --store results.db --port 8765 --workers 2
    repro serve --store farm.db --workers remote --shards 4 \\
        --lease-scenarios 8 --lease-timeout 30
    repro worker --connect http://127.0.0.1:8765 --processes 4
    repro store farm.db --stats
    repro store farm.db --stats --format json
    repro top --connect http://127.0.0.1:8765
    repro trace show spans.jsonl --limit 20
    repro trace summarize spans.jsonl
    repro timeline show results.db --key CACHE_KEY
    repro timeline curve timeline.json --format markdown
    repro timeline diff results.db --key-a KEY_A --key-b KEY_B
    repro bench --scale smoke --output BENCH_hotpaths.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.adversary import all_adversaries
from repro.core.faults import AdversaryConfig, FaultConfig, FaultModel
from repro.experiments import all_experiments, get_experiment
from repro.introspect import registry_dump
from repro.runner import Scenario, all_algorithms, expand_grid, run_batch
from repro.topologies.registry import TOPOLOGY_FAMILIES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Broadcasting in Noisy Radio Networks' "
            "(PODC 2017): run any experiment from DESIGN.md section 4, "
            "or sweep declarative scenarios over any registered algorithm."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser(
        "list",
        help=(
            "list registered experiments, algorithms, topologies, and "
            "adversaries"
        ),
    )
    lst.add_argument(
        "--adversaries",
        action="store_true",
        help="list only the registered adversary models",
    )
    lst.add_argument(
        "--channels",
        action="store_true",
        help="list only the registered channel kinds",
    )
    lst.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: machine-readable registry dump)",
    )

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("id", help="experiment id (e.g. E4, A1) or 'all'")
    run.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="smoke",
        help="sweep size: smoke (seconds) or full (the EXPERIMENTS.md scale)",
    )
    run.add_argument("--seed", type=int, default=0, help="top-level RNG seed")
    run.add_argument(
        "--format",
        choices=("text", "csv", "markdown", "json"),
        default="text",
        help="output format",
    )
    _add_adversary_arguments(run)
    _add_channel_arguments(run)

    swp = sub.add_parser(
        "sweep",
        help="run a scenario grid (algorithms x seeds) and emit JSON reports",
    )
    swp.add_argument(
        "--algorithms",
        default="decay",
        help="comma-separated registered algorithm names (see 'repro list')",
    )
    swp.add_argument(
        "--topology", default="path", help="topology family (see 'repro list')"
    )
    swp.add_argument("--n", type=int, default=64, help="topology size")
    swp.add_argument(
        "--fault-model",
        choices=("none", "sender", "receiver"),
        default="none",
        help="fault mechanism",
    )
    swp.add_argument(
        "--p", type=float, default=0.0, help="fault probability in [0, 1)"
    )
    swp.add_argument(
        "--seeds",
        default="0",
        help="seed grid: comma list and/or start:stop ranges (e.g. 0,7 or 0:5)",
    )
    swp.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter (repeatable); VALUE parses as JSON when it can",
    )
    _add_adversary_arguments(swp)
    _add_channel_arguments(swp)
    swp.add_argument(
        "--max-rounds", type=int, default=None, help="round budget override"
    )
    swp.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for the batch (1: serial)",
    )
    swp.add_argument(
        "--format",
        choices=("json", "table"),
        default="json",
        help="output format",
    )
    swp.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )
    swp.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="record canonical reports in this content-addressed SQLite store",
    )
    swp.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse stored results: scenarios already in --store skip "
            "execution (byte-identical reports, served from SQLite)"
        ),
    )

    srv = sub.add_parser(
        "serve",
        help="serve sweeps over HTTP: submit jobs, poll progress, fetch reports",
    )
    srv.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="the content-addressed result store backing the service",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8765, help="bind port (0: ephemeral)"
    )
    srv.add_argument(
        "--workers",
        default="2",
        help=(
            "background worker threads draining the job queue, or "
            "'remote': coordinate external 'repro worker' processes "
            "through chunked leases instead"
        ),
    )
    srv.add_argument(
        "--processes",
        type=int,
        default=None,
        help="per-job process fan-out for run_batch (default: in-thread)",
    )
    srv.add_argument(
        "--lease-scenarios",
        type=int,
        default=None,
        help="scenarios per lease chunk (--workers remote)",
    )
    srv.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        help=(
            "seconds a lease survives without a heartbeat before its "
            "scenarios requeue (--workers remote)"
        ),
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "open/create the store sharded over this many SQLite files "
            "(PATH becomes a directory of shard-NN.db)"
        ),
    )
    srv.add_argument(
        "--recover",
        action="store_true",
        help=(
            "rebuild the coordinator from the store's farm journal: jobs "
            "and in-flight leases a crashed coordinator left behind "
            "resume under their original ids (--workers remote only)"
        ),
    )
    srv.add_argument(
        "--no-journal",
        action="store_true",
        help=(
            "disable write-ahead journaling of coordinator state "
            "(a crash then orphans running sweeps; exists to measure "
            "the journal's overhead)"
        ),
    )

    wrk = sub.add_parser(
        "worker",
        help=(
            "join a farm: pull scenario leases from a 'repro serve "
            "--workers remote' coordinator, execute, push reports back"
        ),
    )
    wrk.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="the coordinator's base URL (e.g. http://127.0.0.1:8765)",
    )
    wrk.add_argument(
        "--name",
        default="",
        help="worker name reported to the coordinator (default: host:pid)",
    )
    wrk.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="N",
        help="cap scenarios per lease (default: the coordinator's size)",
    )
    wrk.add_argument(
        "--processes",
        type=int,
        default=None,
        help="per-lease process fan-out for run_batch (default: in-thread)",
    )
    wrk.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between lease polls when the queue is idle",
    )
    wrk.add_argument(
        "--until-idle",
        action="store_true",
        help="exit once the queue drains instead of polling forever",
    )
    wrk.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help=(
            "total per-call deadline in seconds (attempts + retries); "
            "bounds how long a black-holed coordinator can stall a call"
        ),
    )
    wrk.add_argument(
        "--chaos-kill-after",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: hard-kill this worker after N completed leases",
    )
    wrk.add_argument(
        "--chaos-heartbeat-factor",
        type=float,
        default=1.0,
        metavar="F",
        help=(
            "fault injection: multiply the heartbeat interval by F "
            "(values > 3 let leases expire mid-run)"
        ),
    )

    top = sub.add_parser(
        "top",
        help=(
            "live dashboard for a running service: workers, queue depth, "
            "throughput, and selected metrics, refreshed in place"
        ),
    )
    top.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="the service's base URL (e.g. http://127.0.0.1:8765)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="render N frames then exit (0: refresh until interrupted)",
    )

    trc = sub.add_parser(
        "trace",
        help="inspect JSONL span files written by the telemetry TraceSink",
    )
    trc_sub = trc.add_subparsers(dest="action", required=True)
    shw = trc_sub.add_parser("show", help="print spans, one line each")
    shw.add_argument("path", help="a TraceSink JSONL file")
    shw.add_argument(
        "--limit", type=int, default=50, help="spans printed (default 50)"
    )
    shw.add_argument(
        "--trace",
        default=None,
        metavar="PREFIX",
        help="only spans whose trace id starts with PREFIX",
    )
    smz = trc_sub.add_parser(
        "summarize", help="per-span-name counts and durations"
    )
    smz.add_argument("path", help="a TraceSink JSONL file")

    tml = sub.add_parser(
        "timeline",
        help=(
            "inspect flight-recorder timelines: scalar summary, informed "
            "wavefront, and run-divergence diffing"
        ),
    )
    tml_sub = tml.add_subparsers(dest="action", required=True)
    format_kwargs = {
        "choices": ("text", "markdown", "json"),
        "default": "text",
        "help": "output format (default text)",
    }
    tshw = tml_sub.add_parser(
        "show", help="scalar progress summary + loss attribution"
    )
    tcrv = tml_sub.add_parser(
        "curve", help="the informed wavefront, one row per bucket"
    )
    for parser_ in (tshw, tcrv):
        parser_.add_argument(
            "source",
            help="a timeline JSON file, or a result store path with --key",
        )
        parser_.add_argument(
            "--key",
            default=None,
            metavar="CACHE_KEY",
            help=(
                "treat SOURCE as a result store and load the timeline "
                "sidecar stored under this report cache key"
            ),
        )
        parser_.add_argument("--format", **format_kwargs)
    tcrv.add_argument(
        "--limit", type=int, default=None, help="buckets printed (default all)"
    )
    tdif = tml_sub.add_parser(
        "diff",
        help="align two timelines and bisect the first diverging round",
    )
    tdif.add_argument(
        "a", help="first timeline: a JSON file, or a store path with --key-a"
    )
    tdif.add_argument(
        "b",
        nargs="?",
        default=None,
        help=(
            "second timeline; omit to load both sidecars from the first "
            "source's store (requires --key-a and --key-b)"
        ),
    )
    tdif.add_argument(
        "--key-a", default=None, metavar="CACHE_KEY",
        help="treat A as a result store; load this report's sidecar",
    )
    tdif.add_argument(
        "--key-b", default=None, metavar="CACHE_KEY",
        help="treat B (or A when B is omitted) as a result store",
    )
    tdif.add_argument("--format", **format_kwargs)

    sto = sub.add_parser(
        "store",
        help="inspect a result store, or export matching reports to JSON",
    )
    sto.add_argument("path", help="store database file (or shard directory)")
    sto.add_argument(
        "--stats",
        action="store_true",
        help=(
            "human-readable store summary: per-shard row counts and the "
            "dedup ratio (duplicate put offers absorbed by content "
            "addressing)"
        ),
    )
    sto.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "with --stats: text (table) or json (machine-readable "
            "shard/dedup/quarantine stats for scraping)"
        ),
    )
    sto.add_argument(
        "--export",
        default=None,
        metavar="OUT",
        help="write matching reports to OUT as a JSON array",
    )
    sto.add_argument("--algorithm", default=None, help="filter by algorithm")
    sto.add_argument("--topology", default=None, help="filter by topology family")
    sto.add_argument(
        "--adversary",
        default=None,
        help="filter by adversary kind ('none': fault-coin runs)",
    )
    sto.add_argument(
        "--seed-min", type=int, default=None, help="minimum seed (inclusive)"
    )
    sto.add_argument(
        "--seed-max", type=int, default=None, help="maximum seed (inclusive)"
    )

    ana = sub.add_parser(
        "analyze",
        help=(
            "statistical analysis over a result store: aggregation with "
            "CIs, scaling-law fits, paired comparisons, adaptive sweeps"
        ),
    )
    ana_sub = ana.add_subparsers(dest="action", required=True)

    agg = ana_sub.add_parser(
        "aggregate", help="group-by statistics with Wilson/bootstrap CIs"
    )
    agg.add_argument(
        "--by",
        default="algorithm",
        help="comma-separated group dimensions (algorithm, topology, n, "
        "adversary, fault_model, fault_p, seed, success)",
    )
    agg.add_argument(
        "--percentiles",
        default="5,50,95",
        help="comma-separated metric percentiles per group",
    )
    _add_analysis_arguments(agg)

    fit = ana_sub.add_parser(
        "fit", help="fit rounds-vs-n scaling laws (power law + D+c*log^k n, AIC)"
    )
    fit.add_argument(
        "--by", default="algorithm", help="comma-separated group dimensions"
    )
    fit.add_argument(
        "--x", default="n", help="the scaling dimension (default: n)"
    )
    fit.add_argument(
        "--max-k", type=int, default=3, help="largest log power in the model family"
    )
    _add_analysis_arguments(fit)

    cmp = ana_sub.add_parser(
        "compare",
        help="paired two-arm comparison on matched seeds (sign test + "
        "bootstrap ratio CI)",
    )
    cmp.add_argument(
        "--arm-a",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        required=True,
        help="arm A row filter (repeatable), e.g. algorithm=decay",
    )
    cmp.add_argument(
        "--arm-b",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        required=True,
        help="arm B row filter (repeatable), e.g. algorithm=rlnc_decay",
    )
    cmp.add_argument(
        "--match-on",
        default="topology,n,seed",
        help="comma-separated dimensions pairs must agree on",
    )
    _add_analysis_arguments(cmp)

    ada = ana_sub.add_parser(
        "adaptive",
        help="adaptive sequential sweep: spend seeds where CIs are widest "
        "(resumable through the store)",
    )
    ada.add_argument(
        "--algorithms",
        default="decay",
        help="comma-separated registered algorithm names (a grid axis)",
    )
    ada.add_argument("--topology", default="path", help="topology family")
    ada.add_argument(
        "--n", default="64", help="comma-separated topology sizes (a grid axis)"
    )
    ada.add_argument(
        "--fault-model",
        choices=("none", "sender", "receiver"),
        default="none",
        help="fault mechanism",
    )
    ada.add_argument(
        "--p", type=float, default=0.0, help="fault probability in [0, 1)"
    )
    ada.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter (repeatable)",
    )
    _add_adversary_arguments(ada)
    ada.add_argument(
        "--max-rounds", type=int, default=None, help="round budget override"
    )
    ada.add_argument(
        "--target-halfwidth",
        type=float,
        default=1.0,
        help="stop refining a cell once its CI is within ±this",
    )
    ada.add_argument(
        "--max-seeds", type=int, default=64, help="per-cell seed budget"
    )
    ada.add_argument(
        "--batch", type=int, default=4, help="seeds per refinement step"
    )
    ada.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes per batch (1: serial)",
    )
    _add_analysis_arguments(ada, filters=False)

    bench = sub.add_parser(
        "bench",
        help="microbenchmark the simulation hot paths (vectorized vs reference)",
    )
    bench.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="smoke",
        help="iteration counts: smoke (CI-sized) or full (stable timings)",
    )
    bench.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="report path (default: BENCH_hotpaths.json)",
    )
    bench.add_argument(
        "--skip-check",
        action="store_true",
        help="skip the kernel/reference consistency cross-check",
    )
    return parser


def _add_analysis_arguments(
    parser: argparse.ArgumentParser, filters: bool = True
) -> None:
    """Flags shared by every ``repro analyze`` action.

    ``filters=False`` (the adaptive action) skips the store row filters:
    adaptive sweeps *generate* runs from their scenario grid rather than
    reading filtered rows, so the flags would be dead weight there.
    """
    parser.add_argument("store", help="result store database file")
    parser.add_argument(
        "--metric",
        choices=("rounds", "rounds_per_message", "informed_fraction"),
        default="rounds",
        help="the per-run quantity analyzed",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for every interval",
    )
    parser.add_argument(
        "--resamples", type=int, default=1000, help="bootstrap resamples"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="bootstrap RNG seed"
    )
    if filters:
        parser.add_argument(
            "--algorithm", default=None, help="filter by algorithm"
        )
        parser.add_argument(
            "--topology-filter",
            default=None,
            metavar="NAME",
            help="filter by topology family",
        )
        parser.add_argument(
            "--adversary-filter",
            default=None,
            metavar="NAME",
            help="filter by adversary kind ('none': fault-coin runs)",
        )
        parser.add_argument(
            "--seed-min", type=int, default=None, help="minimum scenario seed"
        )
        parser.add_argument(
            "--seed-max", type=int, default=None, help="maximum scenario seed"
        )
    parser.add_argument(
        "--format",
        choices=("text", "markdown", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--canonical",
        action="store_true",
        help="with --format json: emit the canonical bytes (no meta), the "
        "form whose SHA-256 is the report's cache key",
    )
    parser.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )


def _analysis_filters(args: argparse.Namespace) -> dict[str, Any]:
    filters = {
        "algorithm": args.algorithm,
        "topology": args.topology_filter,
        "adversary": args.adversary_filter,
        "seed_min": args.seed_min,
        "seed_max": args.seed_max,
    }
    return {key: value for key, value in filters.items() if value is not None}


def _render_analysis(report, args: argparse.Namespace) -> int:
    if args.format == "json":
        text = report.to_json(indent=2, canonical=args.canonical)
    elif args.format == "markdown":
        text = report.to_table().to_markdown()
    else:
        table = report.to_table()
        summary = {
            key: value
            for key, value in report.summary.items()
            if key != "title"
        }
        text = table.to_text() + "\n" + json.dumps(summary, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {report.kind} analysis to {args.output}")
    else:
        print(text)
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    import os

    from repro import analysis

    new_store = args.action == "adaptive" and not os.path.exists(args.store)
    if not new_store and not os.path.exists(args.store):
        print(f"no store at {args.store!r}", file=sys.stderr)
        return 2
    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        with store:
            if args.action == "aggregate":
                report = analysis.aggregate(
                    store,
                    by=_parse_names(args.by),
                    metric=args.metric,
                    percentiles=[float(q) for q in _parse_names(args.percentiles)],
                    confidence=args.confidence,
                    resamples=args.resamples,
                    seed=args.seed,
                    filters=_analysis_filters(args),
                )
            elif args.action == "fit":
                report = analysis.fit(
                    store,
                    by=_parse_names(args.by),
                    x=args.x,
                    metric=args.metric,
                    max_k=args.max_k,
                    seed=args.seed,
                    filters=_analysis_filters(args),
                )
            elif args.action == "compare":
                report = analysis.compare(
                    store,
                    arm_a=_parse_params(args.arm_a),
                    arm_b=_parse_params(args.arm_b),
                    metric=args.metric,
                    match_on=_parse_names(args.match_on),
                    confidence=args.confidence,
                    resamples=args.resamples,
                    seed=args.seed,
                    filters=_analysis_filters(args),
                )
            else:  # adaptive
                report = _run_adaptive(args, store)
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    return _render_analysis(report, args)


def _run_adaptive(args: argparse.Namespace, store):
    from repro.analysis import adaptive_sweep

    algorithms = _parse_names(args.algorithms)
    sizes = [int(n) for n in _parse_names(args.n)]
    if not algorithms or not sizes:
        raise ValueError("need at least one algorithm and one n")
    adversary = _parse_adversary(args)
    if args.fault_model == "none":
        faults = FaultConfig.faultless()
    else:
        faults = FaultConfig(FaultModel(args.fault_model), args.p)
    if adversary is not None and not faults.is_faultless:
        raise ValueError(
            "--adversary replaces the fault coins; drop --fault-model/--p"
        )
    base = Scenario(
        algorithm=algorithms[0],
        topology=args.topology,
        topology_params={"n": sizes[0]},
        params=_parse_params(args.param),
        faults=faults,
        adversary=adversary,
        seed=0,
        max_rounds=args.max_rounds,
    )
    report = adaptive_sweep(
        base,
        grid={"algorithm": algorithms, "n": sizes},
        target_halfwidth=args.target_halfwidth,
        max_seeds=args.max_seeds,
        batch=args.batch,
        metric=args.metric,
        confidence=args.confidence,
        resamples=args.resamples,
        seed=args.seed,
        store=store,
        processes=args.processes,
    )
    meta = report.meta
    print(
        f"adaptive: {report.summary['total_runs']} runs over "
        f"{report.summary['cells']} cells — {meta['executed']} executed, "
        f"{meta['served_from_store']} served from {args.store}",
        file=sys.stderr,
    )
    return report


def _parse_names(spec: str) -> list[str]:
    """A comma-separated name list -> stripped, non-empty entries."""
    return [part.strip() for part in spec.split(",") if part.strip()]


def _add_adversary_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adversary",
        default=None,
        metavar="NAME",
        help=(
            "adversary model replacing the i.i.d. fault coins "
            "(see 'repro list --adversaries')"
        ),
    )
    parser.add_argument(
        "--adversary-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "adversary parameter (repeatable); VALUE parses as JSON when "
            "it can"
        ),
    )


def _parse_adversary(args: argparse.Namespace) -> Optional[AdversaryConfig]:
    """``--adversary``/``--adversary-param`` -> an AdversaryConfig (or None)."""
    if args.adversary is None:
        if args.adversary_param:
            raise ValueError("--adversary-param requires --adversary NAME")
        return None
    config = AdversaryConfig(args.adversary, _parse_params(args.adversary_param))
    # fail fast with a usage error, not deep inside an experiment driver
    from repro.adversary import get_adversary_type

    get_adversary_type(config.kind).validate_params(config.params)
    return config


def _add_channel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--channel",
        default="default",
        metavar="KIND",
        help=(
            "channel kind: 'default' (the paper's collision channel) or "
            "'contention' (CSMA/CA MAC; see 'repro list --channels')"
        ),
    )
    parser.add_argument(
        "--channel-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "channel parameter (repeatable); VALUE parses as JSON when "
            "it can"
        ),
    )


def _parse_channel(args: argparse.Namespace) -> tuple[str, dict]:
    """``--channel``/``--channel-param`` -> a validated (kind, params) pair."""
    params = _parse_params(args.channel_param)
    # fail fast on unknown kinds or parameter keys/values
    from repro.mac.config import make_channel_config

    make_channel_config(args.channel, params)
    return args.channel, params


def _render(table, fmt: str) -> str:
    if fmt == "csv":
        return table.to_csv()
    if fmt == "markdown":
        return table.to_markdown()
    if fmt == "json":
        return table.to_json(indent=2)
    return table.to_text()


def _parse_seeds(spec: str) -> list[int]:
    """``"0,7"`` and/or ``"0:5"`` range segments -> a seed list."""
    seeds: list[int] = []
    for segment in spec.split(","):
        segment = segment.strip()
        if not segment:
            continue
        if ":" in segment:
            start_text, stop_text = segment.split(":", 1)
            start, stop = int(start_text), int(stop_text)
            if stop <= start:
                raise ValueError(f"empty seed range {segment!r}")
            seeds.extend(range(start, stop))
        else:
            seeds.append(int(segment))
    if not seeds:
        raise ValueError(f"no seeds in {spec!r}")
    return seeds


def _parse_params(pairs: Sequence[str]) -> dict[str, Any]:
    """``KEY=VALUE`` pairs with JSON-typed values (fallback: string)."""
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"expected KEY=VALUE, got {pair!r}")
        key, text = pair.split("=", 1)
        try:
            params[key.strip()] = json.loads(text)
        except json.JSONDecodeError:
            params[key.strip()] = text
    return params


def _print_adversary_section() -> None:
    print("adversaries (repro sweep --adversary NAME):")
    for kind in all_adversaries():
        print(f"  {kind.name:<24} {kind.summary}")
        if kind.params:
            declared = ", ".join(
                f"{p.name}={p.default!r}" for p in kind.params
            )
            print(f"  {'':<24} params: {declared}")


def _print_channel_section() -> None:
    from repro.mac.config import CHANNEL_KINDS

    print("channels (repro sweep --channel KIND):")
    for name in sorted(CHANNEL_KINDS):
        kind = CHANNEL_KINDS[name]
        print(f"  {name:<24} {kind['summary']}")
        if kind["params"]:
            declared = ", ".join(
                f"{key}={value!r}" for key, value in kind["params"].items()
            )
            print(f"  {'':<24} params: {declared}")


def _command_list(args: argparse.Namespace) -> int:
    if args.format == "json":
        print(json.dumps(registry_dump(args.adversaries), indent=2))
        return 0
    if args.adversaries:
        _print_adversary_section()
        return 0
    if args.channels:
        _print_channel_section()
        return 0
    print("experiments:")
    for experiment in all_experiments():
        print(f"{experiment.id:>4}  {experiment.title}")
        print(f"      {experiment.claim}")
    print()
    print("algorithms (repro sweep --algorithms NAME):")
    for algorithm in all_algorithms():
        print(f"  {algorithm.name:<24} [{algorithm.kind:<6}] {algorithm.summary}")
        if algorithm.params:
            declared = ", ".join(
                f"{p.name}={p.default!r}" for p in algorithm.params
            )
            print(f"  {'':<24} params: {declared}")
    print()
    families = ", ".join(sorted(TOPOLOGY_FAMILIES))
    print(f"topologies (repro sweep --topology NAME): {families}")
    print()
    _print_adversary_section()
    print()
    _print_channel_section()
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    algorithms = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    if not algorithms:
        print("no algorithms given", file=sys.stderr)
        return 2
    # usage errors (bad names, specs, parameter values) fail fast with a
    # one-line message; genuine runtime errors inside the batch propagate
    # with their traceback
    try:
        seeds = _parse_seeds(args.seeds)
        params = _parse_params(args.param)
        adversary = _parse_adversary(args)
        channel, channel_params = _parse_channel(args)
        if args.fault_model == "none":
            faults = FaultConfig.faultless()
        else:
            faults = FaultConfig(FaultModel(args.fault_model), args.p)
        if adversary is not None and not faults.is_faultless:
            raise ValueError(
                "--adversary replaces the fault coins; drop --fault-model/--p"
            )
        base = Scenario(
            algorithm=algorithms[0],
            topology=args.topology,
            topology_params={"n": args.n},
            params=params,
            faults=faults,
            adversary=adversary,
            seed=seeds[0],
            max_rounds=args.max_rounds,
            channel=channel,
            channel_params=channel_params,
        )
        scenarios = expand_grid(
            base, seeds=seeds, grid={"algorithm": algorithms}
        )
        if args.resume and args.store is None:
            raise ValueError("--resume requires --store PATH")
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2

    if args.store is not None:
        store = _open_store(args.store)
        if store is None:
            return 2
        with store:
            before = len(store)
            reports = run_batch(
                scenarios,
                processes=args.processes,
                store=store,
                reuse=args.resume,
            )
            if args.resume:
                # misses are exactly the newly stored rows, so the hit
                # count costs two COUNT(*)s instead of a per-scenario probe
                cached = len(scenarios) - (len(store) - before)
                print(
                    f"resume: {cached}/{len(scenarios)} scenarios served "
                    f"from {args.store}",
                    file=sys.stderr,
                )
    else:
        reports = run_batch(scenarios, processes=args.processes)

    if args.format == "json":
        text = json.dumps(
            [report.to_dict() for report in reports], indent=2, sort_keys=True
        )
    else:
        from repro.experiments.common import report_table

        text = report_table(reports, title="scenario sweep").to_text()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(reports)} reports to {args.output}")
    else:
        print(text)
    return 0


def _open_store(path: str, shards: Optional[int] = None):
    """Open a ResultStore, or print a one-line error and return None."""
    import sqlite3

    from repro.store import ResultStore

    try:
        return ResultStore(path, shards=shards)
    except (sqlite3.DatabaseError, ValueError) as error:
        print(f"cannot open store {path!r}: {error}", file=sys.stderr)
        return None


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    remote = args.workers.strip().lower() == "remote"
    if remote:
        workers = 0
    else:
        try:
            workers = int(args.workers)
        except ValueError:
            print(
                f"--workers takes a thread count or 'remote', "
                f"got {args.workers!r}",
                file=sys.stderr,
            )
            return 2
        if workers < 1:
            print("--workers must be >= 1 (or 'remote')", file=sys.stderr)
            return 2
    # fail fast with a usage error if the store is unusable, before
    # binding the socket
    store = _open_store(args.store, shards=args.shards)
    if store is None:
        return 2
    store.close()
    if args.recover and not remote:
        print("--recover requires --workers remote", file=sys.stderr)
        return 2
    return serve(
        args.store,
        host=args.host,
        port=args.port,
        workers=workers,
        processes=args.processes,
        remote_workers=remote,
        lease_scenarios=args.lease_scenarios,
        lease_timeout=args.lease_timeout,
        shards=args.shards,
        recover=args.recover,
        journal=not args.no_journal,
    )


def _command_worker(args: argparse.Namespace) -> int:
    from repro.farm import run_worker

    return run_worker(
        args.connect,
        name=args.name,
        max_scenarios=args.chunk,
        processes=args.processes,
        poll=args.poll,
        until_idle=args.until_idle,
        deadline=args.deadline,
        chaos_kill_after=args.chaos_kill_after,
        chaos_heartbeat_factor=args.chaos_heartbeat_factor,
    )


def _command_store(args: argparse.Namespace) -> int:
    import os

    if not os.path.exists(args.path):
        print(f"no store at {args.path!r}", file=sys.stderr)
        return 2
    filters = {
        "algorithm": args.algorithm,
        "topology": args.topology,
        "adversary": args.adversary,
        "seed_min": args.seed_min,
        "seed_max": args.seed_max,
    }
    filters = {key: value for key, value in filters.items() if value is not None}
    store = _open_store(args.path)
    if store is None:
        return 2
    with store:
        if args.export is not None:
            written = store.export_json(args.export, **filters)
            print(f"exported {written} reports to {args.export}")
            return 0
        if args.stats:
            if args.format == "json":
                print(json.dumps(_store_stats_json(store), indent=2, sort_keys=True))
            else:
                print(_store_stats_text(store))
            return 0
        stats = store.stats()
        if filters:
            stats["matching"] = store.count(**filters)
        print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _store_stats_text(store) -> str:
    """Human-readable store summary: per-shard rows + dedup (``--stats``)."""
    from repro.util.tables import Table

    stats = store.stats()
    shards = store.shard_stats()
    table = Table(
        ("shard", "path", "reports", "attempted", "dedup_ratio"),
        title=(
            f"{stats['path']} — {stats['backend']} backend, "
            f"{stats['shards']} shard(s)"
        ),
    )
    for entry in shards:
        attempted = entry["attempted"]
        ratio = (
            round(1.0 - entry["reports"] / attempted, 4) if attempted else 0.0
        )
        table.add_row(
            entry["shard"], entry["path"], entry["reports"], attempted, ratio
        )
    summary = (
        f"total: {stats['reports']} reports from {stats['puts_attempted']} "
        f"put offers (dedup ratio {stats['dedup_ratio']}); "
        f"{stats['stored_wall_time_s']:.1f}s of stored compute"
    )
    lines = [table.to_text(), summary]
    if stats.get("journal_records"):
        lines.append(
            f"farm journal: {stats['journal_records']} record(s) "
            "(coordinator state; 'repro serve --recover' replays it)"
        )
    from repro.farm.coordinator import read_quarantined

    quarantined = read_quarantined(store)
    if quarantined:
        lines.append(f"quarantined scenarios: {len(quarantined)}")
        for entry in quarantined:
            lines.append(
                f"  {entry['key']} (job {entry['job']}): {entry['error']}"
            )
    return "\n".join(lines)


def _store_stats_json(store) -> dict[str, Any]:
    """The machine-readable twin of ``--stats`` (``--format json``)."""
    from repro.farm.coordinator import read_quarantined

    return {
        **store.stats(),
        "shard_stats": store.shard_stats(),
        "quarantined": read_quarantined(store),
    }


def _top_frame(client) -> str:
    """One rendered frame of the ``repro top`` dashboard."""
    from repro.util.tables import Table

    health = client.health()
    lines = [
        f"repro top — {client.base_url}  "
        f"store: {health['reports']} reports  (v{health['version']})"
    ]
    try:
        snapshot = client.workers()
    except Exception:  # noqa: BLE001 - local-worker mode answers 400
        snapshot = None
    if snapshot is not None:
        queue = snapshot["queue"]
        rates = snapshot.get("rates", {})
        lines.append(
            f"queue: {queue['pending_scenarios']} pending, "
            f"{queue['outstanding_leases']} leased, "
            f"{queue['scenarios_completed']} completed "
            f"({queue['duplicates']} duplicate(s), "
            f"{queue['quarantined_scenarios']} quarantined); "
            f"throughput {rates.get('scenarios_per_s', 0.0)}/s over "
            f"{rates.get('window_s', 0)}s"
        )
        if snapshot["workers"]:
            table = Table(
                ("worker", "name", "idle_s", "leases", "lost",
                 "executed", "cached"),
            )
            for worker in snapshot["workers"]:
                table.add_row(
                    worker["id"],
                    worker["name"],
                    worker["idle_s"],
                    worker["leases_completed"],
                    worker["leases_lost"],
                    worker["executed"],
                    worker["cached"],
                )
            lines.append(table.to_text())
        else:
            lines.append("no workers registered")
    else:
        jobs = client.jobs()
        running = sum(1 for job in jobs if job["status"] == "running")
        finished = sum(
            1 for job in jobs if job["status"] in ("done", "partial")
        )
        lines.append(
            f"local-worker service: {len(jobs)} job(s), "
            f"{running} running, {finished} finished"
        )
    try:
        metrics = client.metrics_json().get("metrics", {})
    except Exception:  # noqa: BLE001 - older service without /metrics.json
        metrics = {}
    parts = []
    for name in (
        "repro_store_put_rows_total",
        "repro_farm_leases_granted_total",
        "repro_farm_leases_expired_total",
        "repro_client_retries_total",
    ):
        metric = metrics.get(name)
        if metric and metric.get("value"):
            parts.append(f"{name[len('repro_'):]}={metric['value']}")
    http = metrics.get("repro_http_requests_total") or {}
    total_http = sum(entry["value"] for entry in http.get("labeled", []))
    if total_http:
        parts.append(f"http_requests={total_http}")
    # contention-MAC health: collisions per delivery (only shown once the
    # service has actually run contention-channel scenarios)
    mac_collisions = (metrics.get("repro_mac_collisions_total") or {}).get(
        "value", 0
    )
    deliveries = (metrics.get("repro_channel_deliveries_total") or {}).get(
        "value", 0
    )
    if mac_collisions and deliveries:
        parts.append(
            f"mac_collisions/deliveries={mac_collisions / deliveries:.3f}"
        )
    if parts:
        lines.append("metrics: " + "  ".join(parts))
    return "\n".join(lines)


def _command_top(args: argparse.Namespace) -> int:
    import time

    from repro.service.client import ServiceClient

    client = ServiceClient(args.connect, timeout=10.0, retries=1)
    frames = 0
    try:
        while True:
            try:
                frame = _top_frame(client)
            except Exception as error:  # noqa: BLE001 - keep refreshing
                frame = f"cannot reach {args.connect}: {error}"
            if sys.stdout.isatty() and args.count != 1:
                # clear + home between frames, only when interactive
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            frames += 1
            if args.count and frames >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _command_trace(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry import read_trace_file

    if not os.path.exists(args.path):
        print(f"no trace file at {args.path!r}", file=sys.stderr)
        return 2
    try:
        records = read_trace_file(args.path)
    except (ValueError, KeyError, TypeError) as error:
        print(
            f"cannot parse trace file {args.path!r}: {error}", file=sys.stderr
        )
        return 2
    if args.action == "show":
        if args.trace:
            records = [
                record for record in records
                if record["trace"].startswith(args.trace)
            ]
        for record in records[: args.limit]:
            attrs = record.get("attrs", {})
            extra = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            print(
                f"{record['trace'][:12]} {record['span']} "
                f"{record['name']:<16} "
                f"{record['duration_s'] * 1000.0:10.3f}ms  {extra}"
            )
        if len(records) > args.limit:
            print(f"... {len(records) - args.limit} more (raise --limit)")
        return 0
    # summarize
    from repro.util.tables import Table

    by_name: dict[str, list[float]] = {}
    traces = set()
    for record in records:
        traces.add(record["trace"])
        entry = by_name.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record["duration_s"]
        entry[2] = max(entry[2], record["duration_s"])
    table = Table(
        ("span", "count", "total_s", "mean_ms", "max_ms"),
        title=f"{args.path}: {len(records)} span(s), {len(traces)} trace(s)",
    )
    for name in sorted(by_name):
        count, total, peak = by_name[name]
        table.add_row(
            name,
            int(count),
            round(total, 3),
            round(total / count * 1000.0, 3),
            round(peak * 1000.0, 3),
        )
    print(table.to_text())
    return 0


def _load_timeline(path: str, key: Optional[str]):
    """Load a Timeline from a JSON file (or a store sidecar with ``key``).

    Prints a one-line error and returns None on any failure, so callers
    can turn it straight into exit code 2.
    """
    import os

    from repro.timeline import Timeline

    if key is not None:
        if not os.path.exists(path):
            print(f"no store at {path!r}", file=sys.stderr)
            return None
        store = _open_store(path)
        if store is None:
            return None
        with store:
            timeline = store.get_timeline(key)
        if timeline is None:
            print(
                f"no timeline stored under {key!r} in {path!r}",
                file=sys.stderr,
            )
            return None
        return timeline
    if not os.path.exists(path):
        print(f"no timeline file at {path!r}", file=sys.stderr)
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return Timeline.from_json(handle.read())
    except (ValueError, KeyError, TypeError) as error:
        print(f"cannot parse timeline {path!r}: {error}", file=sys.stderr)
        return None


def _command_timeline(args: argparse.Namespace) -> int:
    from repro.timeline.analyze import progress_curve, summarize
    from repro.timeline.diff import diff_timelines
    from repro.util.tables import Table

    if args.action == "diff":
        if args.b is None and (args.key_a is None or args.key_b is None):
            print(
                "timeline diff needs two sources: two files, two "
                "store/--key pairs, or one store with --key-a and --key-b",
                file=sys.stderr,
            )
            return 2
        a = _load_timeline(args.a, args.key_a)
        if a is None:
            return 2
        b = _load_timeline(args.b if args.b is not None else args.a, args.key_b)
        if b is None:
            return 2
        try:
            diff = diff_timelines(a, b)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        if args.format == "json":
            print(diff.to_json(indent=2))
        else:
            print(_render(diff.to_table(), args.format))
        return 0

    timeline = _load_timeline(args.source, args.key)
    if timeline is None:
        return 2

    if args.action == "curve":
        points = progress_curve(timeline)
        if args.limit is not None:
            points = points[: args.limit]
        if args.format == "json":
            print(json.dumps(points, indent=2, sort_keys=True))
            return 0
        table = Table(
            ("round", "informed", "fraction", "new_informed", "deliveries"),
            title=(
                f"informed wavefront: n={timeline.n} every={timeline.every}"
            ),
        )
        for point in points:
            table.add_row(
                point["round"],
                point["informed"],
                round(point["fraction"], 4),
                point["new_informed"],
                point["deliveries"],
            )
        print(_render(table, args.format))
        return 0

    # show
    summary = summarize(timeline)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    table = Table(
        ("metric", "value"),
        title=(
            f"timeline: n={timeline.n} rounds={timeline.rounds} "
            f"every={timeline.every}"
        ),
    )
    for name in sorted(summary):
        value = summary[name]
        if isinstance(value, float):
            value = round(value, 4)
        table.add_row(name, value)
    print(_render(table, args.format))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import consistency_check, run_hotpath_benchmarks, write_report

    if not args.skip_check:
        failures = consistency_check()
        if failures:
            for failure in failures:
                print(f"MISMATCH: {failure}", file=sys.stderr)
            print(
                f"{len(failures)} kernel/reference mismatches; not benchmarking",
                file=sys.stderr,
            )
            return 1
        print("consistency: vectorized kernels match references")

    report = run_hotpath_benchmarks(scale=args.scale)
    write_report(report, args.output)
    for result in report["results"]:
        speedup = result["speedup"]
        suffix = f"  ({speedup}x vs reference)" if speedup is not None else ""
        print(f"{result['name']:<24} {result['ops_per_sec']:>12.2f} ops/s{suffix}")
    print(f"wrote {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        return _command_list(args)

    if args.command == "sweep":
        return _command_sweep(args)

    if args.command == "serve":
        return _command_serve(args)

    if args.command == "worker":
        return _command_worker(args)

    if args.command == "store":
        return _command_store(args)

    if args.command == "top":
        return _command_top(args)

    if args.command == "trace":
        return _command_trace(args)

    if args.command == "timeline":
        return _command_timeline(args)

    if args.command == "analyze":
        return _command_analyze(args)

    if args.command == "bench":
        return _command_bench(args)

    try:
        adversary = _parse_adversary(args)
        channel_kind, channel_params = _parse_channel(args)
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    # only a non-default channel is an override an experiment must opt into
    channel = (
        None
        if channel_kind == "default" and not channel_params
        else (channel_kind, channel_params)
    )

    if args.id.lower() == "all":
        experiments = all_experiments()
    else:
        try:
            experiments = [get_experiment(args.id)]
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2

    for experiment in experiments:
        try:
            table = experiment(
                scale=args.scale,
                seed=args.seed,
                adversary=adversary,
                channel=channel,
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        print(_render(table, args.format))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
