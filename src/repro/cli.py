"""Command-line interface: list and run experiments, print result tables.

Usage::

    repro list
    repro run E4 --scale full --seed 1
    repro run all --scale smoke
    repro run E10 --format csv
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import all_experiments, get_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Broadcasting in Noisy Radio Networks' "
            "(PODC 2017): run any experiment from DESIGN.md section 4."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("id", help="experiment id (e.g. E4, A1) or 'all'")
    run.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="smoke",
        help="sweep size: smoke (seconds) or full (the EXPERIMENTS.md scale)",
    )
    run.add_argument("--seed", type=int, default=0, help="top-level RNG seed")
    run.add_argument(
        "--format",
        choices=("text", "csv", "markdown"),
        default="text",
        help="output format",
    )
    return parser


def _render(table, fmt: str) -> str:
    if fmt == "csv":
        return table.to_csv()
    if fmt == "markdown":
        return table.to_markdown()
    return table.to_text()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for experiment in all_experiments():
            print(f"{experiment.id:>4}  {experiment.title}")
            print(f"      {experiment.claim}")
        return 0

    if args.id.lower() == "all":
        experiments = all_experiments()
    else:
        try:
            experiments = [get_experiment(args.id)]
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2

    for experiment in experiments:
        table = experiment(scale=args.scale, seed=args.seed)
        print(_render(table, args.format))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
