"""A fault-injecting HTTP proxy for chaos-testing the farm.

:class:`ChaosProxy` listens on its own port and forwards every request
to one upstream service, injecting transport faults on the way:

``drop``
    close the connection without answering (the client sees a reset —
    a retryable transport error, never an HTTP response);
``delay``
    sleep a sampled interval, then forward normally (stresses timeouts
    and heartbeat margins without losing anything);
``error``
    answer ``500`` *without forwarding* — the upstream never sees the
    request, so a retried non-idempotent call cannot double-execute;
``black-hole``
    accept the connection, read the request, and never answer (the
    pathology that per-attempt socket timeouts alone cannot bound —
    this is what :class:`~repro.service.client.ServiceClient`'s total
    per-call ``deadline`` exists for).

The fault schedule is drawn from one seeded :class:`random.Random`
under a lock: the *i*-th request the proxy accepts gets the *i*-th
decision, so a given seed produces a reproducible fault sequence for a
given request order (with concurrent clients the arrival order itself
may vary, which is the point of chaos, not a defect of the schedule).

The proxy is HTTP-level, not TCP-level: it parses each request, so
faults land on whole protocol operations, and responses are relayed
with ``Connection: close`` so no keep-alive socket ever spans a fault
decision.
"""

from __future__ import annotations

import http.client
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from random import Random
from typing import Any, Optional
from urllib.parse import urlparse

__all__ = ["ChaosProxy"]

#: request headers never forwarded (hop-by-hop, or recomputed)
_HOP_HEADERS = frozenset(
    ("host", "connection", "keep-alive", "content-length", "te",
     "transfer-encoding", "upgrade", "proxy-connection")
)


class _ProxyHandler(BaseHTTPRequestHandler):
    """One proxied request: draw a fault decision, act on it."""

    protocol_version = "HTTP/1.1"
    server: "_ProxyServer"

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.proxy.verbose:
            super().log_message(format, *args)

    # every method funnels through the same fault path
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._proxy()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._proxy()

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._proxy()

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._proxy()

    def _proxy(self) -> None:
        proxy = self.server.proxy
        fault, delay_s = proxy._decide()
        if fault == "drop":
            # no response at all: the client sees the connection die
            self.close_connection = True
            return
        if fault == "error":
            self._send(500, b'{"error": "chaos: injected 500"}')
            return
        if fault == "blackhole":
            # hold the socket open, answer nothing; release early only
            # when the proxy itself shuts down
            proxy._stopping.wait(proxy.blackhole_s)
            self.close_connection = True
            return
        if fault == "delay":
            time.sleep(delay_s)
        try:
            status, body = self._forward()
        except Exception as error:  # noqa: BLE001 - upstream really down
            proxy._count("upstream_errors")
            self._send(502, f'{{"error": "chaos proxy: {error}"}}'.encode())
            return
        self._send(status, body)

    def _forward(self) -> tuple[int, bytes]:
        proxy = self.server.proxy
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        headers = {
            name: value
            for name, value in self.headers.items()
            if name.lower() not in _HOP_HEADERS
        }
        connection = http.client.HTTPConnection(
            proxy.upstream_host, proxy.upstream_port, timeout=proxy.upstream_timeout
        )
        try:
            connection.request(self.command, self.path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _send(self, status: int, body: bytes) -> None:
        self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client gave up first; its problem is handled


class _ProxyServer(ThreadingHTTPServer):
    daemon_threads = True
    proxy: "ChaosProxy"


class ChaosProxy:
    """Seeded fault-injecting proxy in front of one upstream service.

    Parameters
    ----------
    upstream:
        Base URL of the real service (``http://host:port``).
    seed:
        Seeds the fault schedule; the same seed yields the same decision
        sequence.
    drop, delay, error, blackhole:
        Per-request fault probabilities (the remainder forwards
        cleanly). Probabilities are checked to sum to <= 1.
    delay_s:
        ``(low, high)`` seconds for the ``delay`` fault.
    blackhole_s:
        Seconds a black-holed request holds its silent socket.
    upstream_timeout:
        Socket timeout for proxied upstream calls.
    """

    def __init__(
        self,
        upstream: str,
        seed: int = 0,
        drop: float = 0.05,
        delay: float = 0.10,
        error: float = 0.05,
        blackhole: float = 0.0,
        delay_s: tuple[float, float] = (0.02, 0.2),
        blackhole_s: float = 10.0,
        upstream_timeout: float = 30.0,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        for name, rate in (("drop", drop), ("delay", delay),
                           ("error", error), ("blackhole", blackhole)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if drop + delay + error + blackhole > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        parsed = urlparse(upstream)
        if not parsed.hostname or not parsed.port:
            raise ValueError(f"upstream must be http://host:port, got {upstream!r}")
        self.upstream_host = parsed.hostname
        self.upstream_port = parsed.port
        self.rates = {
            "drop": drop, "delay": delay, "error": error, "blackhole": blackhole
        }
        self.delay_s = delay_s
        self.blackhole_s = blackhole_s
        self.upstream_timeout = upstream_timeout
        self.verbose = verbose
        self._random = Random(seed)
        self._lock = threading.Lock()
        self._counts = {
            "requests": 0, "forwarded": 0, "dropped": 0, "delayed": 0,
            "errors": 0, "blackholed": 0, "upstream_errors": 0,
        }
        self._stopping = threading.Event()
        self._server = _ProxyServer((host, port), _ProxyHandler)
        self._server.proxy = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ChaosProxy":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="chaos-proxy",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._stopping.set()  # releases black-holed sockets
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- the schedule --------------------------------------------------------

    def _decide(self) -> tuple[str, float]:
        """The next fault decision: ``(kind, delay_seconds)``."""
        with self._lock:
            self._counts["requests"] += 1
            roll = self._random.random()
            delay_s = self._random.uniform(*self.delay_s)
            edge = 0.0
            for kind in ("drop", "delay", "error", "blackhole"):
                edge += self.rates[kind]
                if roll < edge:
                    self._counts[
                        {"drop": "dropped", "delay": "delayed",
                         "error": "errors", "blackhole": "blackholed"}[kind]
                    ] += 1
                    return kind, delay_s
            self._counts["forwarded"] += 1
            return "forward", 0.0

    def _count(self, name: str) -> None:
        with self._lock:
            self._counts[name] += 1

    def stats(self) -> dict[str, int]:
        """Requests seen and faults injected so far."""
        with self._lock:
            return dict(self._counts)
