"""End-to-end chaos smoke: proxy faults + coordinator kill, byte identity.

``python -m repro.chaos.smoke`` (the CI ``chaos`` job) drives one sweep
through every failure mode the farm claims to survive, at once:

1. starts ``repro serve --workers remote`` on a fresh sharded store and
   a :class:`~repro.chaos.ChaosProxy` in front of it (seeded drops,
   delays, injected 500s, black holes);
2. submits a sweep directly, then starts three workers *through the
   proxy*: one self-kills after its first completed lease
   (``--chaos-kill-after``), one heartbeats too slowly to keep any
   long lease alive (``--chaos-heartbeat-factor``), one is merely
   subject to the proxy;
3. once the sweep is visibly underway, SIGKILLs the coordinator — the
   journal in the store is all that survives — and restarts it with
   ``--recover`` on the same port;
4. waits for the *original job id* to finish on the restarted
   coordinator, with every progress poll asserting ``completed`` never
   exceeds the scenario count;
5. asserts the workers all exited (zero hung processes: the chaos
   victim with its own kill status, the rest cleanly on idle) and the
   final sharded store is **byte-identical** to a serial
   :func:`repro.runner.run_batch` of the same grid — every scenario
   executed at least once, nothing double-counted, nothing lost.

Exit status 0 on success; any mismatch or timeout is fatal.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

from repro.chaos.proxy import ChaosProxy
from repro.core.faults import FaultConfig
from repro.farm.smoke import _free_port, _wait_for_health
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.client import ServiceClient
from repro.store import ResultStore

#: sweep size — enough leases that the kill lands mid-sweep
SCENARIOS = 96

#: short lease timeout: chaos-induced expiries resolve within the smoke
LEASE_TIMEOUT = 2.0

#: scenarios per lease (16 leases across three workers)
LEASE_SCENARIOS = 6

#: the fault schedule seed (change it and the smoke must still pass)
CHAOS_SEED = 7

#: per-call deadline handed to the workers (must beat blackhole_s)
WORKER_DEADLINE = 5.0


def _stage_line(elapsed_s: float, message: str) -> str:
    """One timestamped stage line (``[chaos +  12.3s] message``).

    The smoke runs minutes under CI with long silent stretches (the
    SIGKILL-to-recovery window especially); stamping every stage makes a
    hang in the log attributable to a specific step instead of "somewhere
    after the kill".
    """
    return f"[chaos +{elapsed_s:6.1f}s] {message}"


def _chaos_scenarios() -> list[Scenario]:
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 32},
        faults=FaultConfig.receiver(0.3),
    )
    return expand_grid(base, seeds=range(SCENARIOS))


def _spawn_server(store_path: str, port: int, recover: bool = False) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--store", store_path, "--port", str(port),
        "--workers", "remote", "--shards", "2",
        "--lease-timeout", str(LEASE_TIMEOUT),
        "--lease-scenarios", str(LEASE_SCENARIOS),
    ]
    if recover:
        command.append("--recover")
    return subprocess.Popen(command)


def _spawn_worker(
    url: str,
    name: str,
    kill_after: Optional[int] = None,
    heartbeat_factor: Optional[float] = None,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "worker",
        "--connect", url, "--name", name, "--poll", "0.05",
        "--until-idle", "--deadline", str(WORKER_DEADLINE),
    ]
    if kill_after is not None:
        command += ["--chaos-kill-after", str(kill_after)]
    if heartbeat_factor is not None:
        command += ["--chaos-heartbeat-factor", str(heartbeat_factor)]
    return subprocess.Popen(command)


def _wait_for_progress(
    client: ServiceClient,
    job_id: str,
    threshold: int,
    total: int,
    deadline_s: float = 120.0,
) -> None:
    """Block until ``completed >= threshold`` (asserting it never
    exceeds ``total`` on the way)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        snapshot = client.job(job_id)
        assert snapshot["completed"] <= total, snapshot
        if snapshot["completed"] >= threshold or snapshot["status"] in (
            "done", "partial"
        ):
            return
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never reached {threshold}/{total}")


def run_chaos_smoke(verbose: bool = True) -> dict[str, Any]:
    """The whole scenario (see module docstring); returns the evidence.

    Raises :class:`AssertionError`/:class:`TimeoutError` on any
    violation — also the pytest entry point
    (``tests/chaos/test_chaos_process.py``).
    """
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    scenarios = _chaos_scenarios()
    recovery_seconds = 0.0
    t0 = time.monotonic()

    def stage(message: str) -> None:
        if verbose:
            print(_stage_line(time.monotonic() - t0, message), flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        store_path = str(Path(tmp) / "farm")
        server = _spawn_server(store_path, port)
        proxy = ChaosProxy(
            url,
            seed=CHAOS_SEED,
            drop=0.04,
            delay=0.08,
            error=0.04,
            blackhole=0.01,
            delay_s=(0.02, 0.15),
            blackhole_s=8.0,
        ).start()
        workers: dict[str, subprocess.Popen] = {}
        server2: Optional[subprocess.Popen] = None
        try:
            client = ServiceClient(url)  # the driver bypasses the proxy
            _wait_for_health(client)
            stage(f"coordinator up on port {port} (store: {store_path})")
            job = client.submit(scenarios=scenarios)
            stage(f"job {job['id']} submitted: {len(scenarios)} scenarios")

            # all worker traffic goes through the chaos proxy
            workers["kamikaze"] = _spawn_worker(proxy.url, "kamikaze", kill_after=1)
            workers["slowbeat"] = _spawn_worker(
                proxy.url, "slowbeat", heartbeat_factor=8.0
            )
            workers["steady"] = _spawn_worker(proxy.url, "steady")
            stage("3 workers spawned through the chaos proxy")

            # let the sweep get underway, then kill the coordinator dead
            _wait_for_progress(
                client, job["id"], threshold=len(scenarios) // 6,
                total=len(scenarios),
            )
            stage(
                f"progress >= {len(scenarios) // 6}/{len(scenarios)}; "
                "SIGKILLing the coordinator"
            )
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=10.0)
            stage("coordinator dead; restarting with --recover on the same port")

            restart_at = time.monotonic()
            server2 = _spawn_server(store_path, port, recover=True)
            _wait_for_health(client)
            recovery_seconds = time.monotonic() - restart_at
            stage(f"restarted coordinator healthy after {recovery_seconds:.1f}s")

            snapshot = client.workers()
            assert snapshot["recovered"] is not None, snapshot
            assert snapshot["recovered"]["jobs"] >= 1, snapshot
            stage(
                f"journal recovery confirmed: {snapshot['recovered']['jobs']} "
                f"job(s), {snapshot['recovered']['leases']} in-flight lease(s)"
            )

            # the original job id finishes on the restarted coordinator
            done = None
            deadline = time.monotonic() + 240.0
            while time.monotonic() < deadline:
                done = client.job(job["id"])
                assert done["completed"] <= len(scenarios), done
                if done["status"] in ("done", "partial"):
                    break
                time.sleep(0.1)
            assert done is not None and done["status"] == "done", done
            assert done["completed"] == len(scenarios), done
            stage(f"job {job['id']} done: {done['completed']}/{len(scenarios)}")

            # zero hung workers: everyone exits inside the timeout — the
            # kamikaze with its self-kill status, the others cleanly
            exit_codes = {
                name: process.wait(timeout=120.0)
                for name, process in workers.items()
            }
            assert exit_codes["kamikaze"] == 42, exit_codes
            assert exit_codes["slowbeat"] == 0, exit_codes
            assert exit_codes["steady"] == 0, exit_codes
            stage(f"all workers exited: {exit_codes}")
        finally:
            for process in workers.values():
                if process.poll() is None:
                    process.kill()
            proxy.shutdown()
            for process in (server, server2):
                if process is not None and process.poll() is None:
                    process.terminate()
                    try:
                        process.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        process.kill()

        faults = proxy.stats()
        # the schedule actually injected faults (a chaos smoke that
        # forwarded everything cleanly proved nothing)
        injected = (
            faults["dropped"] + faults["delayed"] + faults["errors"]
            + faults["blackholed"]
        )
        assert injected > 0, faults
        stage(
            f"proxy stats: {faults['requests']} calls, {injected} faults "
            "injected; checking byte identity against serial run_batch"
        )

        # the farm's store vs a serial run of the same grid: byte identity
        direct = run_batch(scenarios)
        with ResultStore(store_path) as store:
            assert len(store) == len(scenarios), (len(store), len(scenarios))
            for scenario, report in zip(scenarios, direct):
                stored = store.get_json(scenario.cache_key())
                assert stored is not None, scenario.cache_key()
                expected = report.to_json(canonical=True)
                assert stored == expected, (
                    f"chaos-farmed bytes differ from serial run_batch for "
                    f"{scenario.cache_key()}"
                )

        evidence = {
            "scenarios": len(scenarios),
            "recovery_seconds": round(recovery_seconds, 3),
            "faults": faults,
            "exit_codes": exit_codes,
        }
        if verbose:
            stage(
                f"chaos smoke OK: {evidence['scenarios']} scenarios through "
                f"{faults['requests']} proxied calls ({faults['dropped']} "
                f"dropped, {faults['delayed']} delayed, {faults['errors']} "
                f"500s, {faults['blackholed']} black-holed), coordinator "
                f"killed and recovered in {evidence['recovery_seconds']}s, "
                "store byte-identical to serial run_batch"
            )
        return evidence


def main() -> int:
    run_chaos_smoke(verbose=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
