"""Fault injection for the farm: a chaos proxy and a chaos smoke.

The paper's algorithms are judged under adversarial noise; this package
holds the infrastructure to the same standard. :class:`ChaosProxy` sits
between farm workers and the coordinator and injects transport faults —
dropped connections, delays, spurious 500s, black holes — from a seeded
schedule, and :mod:`repro.chaos.smoke` drives a full sweep through
proxy faults *plus* a coordinator SIGKILL and worker self-kills,
asserting the final store is byte-identical to a serial run.
"""

from repro.chaos.proxy import ChaosProxy

__all__ = ["ChaosProxy"]
