"""Argument-validation helpers shared across the public API.

The library is used interactively from notebooks and scripts; failing fast
with a precise message at the API boundary is cheaper than debugging a
simulation that silently mis-ran.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_type",
]


def check_probability(value: float, name: str = "p") -> float:
    """Validate a fault probability: a float in [0, 1)."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {value}")
    return float(value)


def check_fraction(value: float, name: str = "value") -> float:
    """Validate a closed-interval fraction in [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_positive(value: int, name: str = "value") -> int:
    """Validate a strictly positive integer."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: int, name: str = "value") -> int:
    """Validate a non-negative integer."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_type(value: Any, expected: type, name: str = "value") -> Any:
    """Validate ``isinstance(value, expected)`` with a readable error."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
