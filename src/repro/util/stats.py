"""Small statistics helpers used by the throughput harness and experiments.

These are deliberately dependency-light: experiments report means, medians,
percentiles and simple concentration diagnostics over repeated simulation
trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Summary",
    "mean",
    "median",
    "stddev",
    "percentile",
    "summarize",
    "geometric_tail",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for sequences of length 1."""
    if not values:
        raise ValueError("stddev of empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var)


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample of simulation measurements."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} sd={self.stddev:.2f} "
            f"min={self.minimum:.0f} p50={self.median:.0f} "
            f"p95={self.p95:.0f} max={self.maximum:.0f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` of a non-empty sample."""
    if not values:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        stddev=stddev(values),
        minimum=float(min(values)),
        p25=percentile(values, 25.0),
        median=percentile(values, 50.0),
        p75=percentile(values, 75.0),
        p95=percentile(values, 95.0),
        maximum=float(max(values)),
    )


def geometric_tail(p: float, t: int) -> float:
    """P(X > t) for X geometric with success probability p (support 1, 2, ...).

    Used in tests to compare empirical retransmission counts against the
    exact tail the paper's Chernoff arguments bound.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if t < 0:
        return 1.0
    return (1.0 - p) ** t
