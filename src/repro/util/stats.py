"""Small statistics helpers used by the throughput harness and experiments.

These are deliberately dependency-light: experiments report means, medians,
percentiles and simple concentration diagnostics over repeated simulation
trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = [
    "Summary",
    "mean",
    "median",
    "stddev",
    "percentile",
    "summarize",
    "geometric_tail",
    "wilson_interval",
    "bootstrap_ci",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for sequences of length 1."""
    if not values:
        raise ValueError("stddev of empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var)


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample of simulation measurements.

    ``mean_ci_low``/``mean_ci_high`` are a seeded-bootstrap confidence
    interval for the mean; they are NaN unless :func:`summarize` was
    asked to compute them (``ci=True``).
    """

    count: int
    mean: float
    stddev: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    mean_ci_low: float = math.nan
    mean_ci_high: float = math.nan

    def __str__(self) -> str:
        text = (
            f"n={self.count} mean={self.mean:.2f} sd={self.stddev:.2f} "
            f"min={self.minimum:.0f} p50={self.median:.0f} "
            f"p95={self.p95:.0f} max={self.maximum:.0f}"
        )
        if not math.isnan(self.mean_ci_low):
            text += f" ci=[{self.mean_ci_low:.2f}, {self.mean_ci_high:.2f}]"
        return text


def summarize(
    values: Sequence[float],
    ci: bool = False,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> Summary:
    """Build a :class:`Summary` of a non-empty sample.

    With ``ci=True`` the summary also carries a seeded-bootstrap
    confidence interval for the mean (see :func:`bootstrap_ci`).
    """
    if not values:
        raise ValueError("summarize of empty sequence")
    ci_low = ci_high = math.nan
    if ci:
        ci_low, ci_high = bootstrap_ci(
            values, confidence=confidence, resamples=resamples, seed=seed
        )
    return Summary(
        count=len(values),
        mean=mean(values),
        stddev=stddev(values),
        minimum=float(min(values)),
        p25=percentile(values, 25.0),
        median=percentile(values, 50.0),
        p75=percentile(values, 75.0),
        p95=percentile(values, 95.0),
        maximum=float(max(values)),
        mean_ci_low=ci_low,
        mean_ci_high=ci_high,
    )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundaries (0 or ``trials`` successes never
    produce a degenerate [x, x] interval), which is why success rates in
    the analysis layer use it instead of the normal approximation.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2.0 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # at the boundaries the score bound is exactly 0 (resp. 1); clamp the
    # floating-point residue of center - margin
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def bootstrap_ci(
    values: Sequence[float],
    statistic: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap confidence interval for a statistic.

    ``statistic`` maps a ``(resamples, n)`` matrix of resampled values to
    a length-``resamples`` vector, one statistic per resample row
    (default: the row mean). The resampling is vectorized — one numpy
    index matrix, one statistic call — and fully determined by ``seed``,
    so equal inputs give byte-equal intervals.
    """
    if not len(values):
        raise ValueError("bootstrap_ci of empty sequence")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    index = rng.integers(0, data.size, size=(resamples, data.size))
    samples = data[index]
    stats = np.mean(samples, axis=1) if statistic is None else statistic(samples)
    stats = np.asarray(stats, dtype=float)
    if stats.shape != (resamples,):
        raise ValueError(
            f"statistic must return one value per resample row: expected "
            f"shape ({resamples},), got {stats.shape}"
        )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def geometric_tail(p: float, t: int) -> float:
    """P(X > t) for X geometric with success probability p (support 1, 2, ...).

    Used in tests to compare empirical retransmission counts against the
    exact tail the paper's Chernoff arguments bound.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if t < 0:
        return 1.0
    return (1.0 - p) ** t
