"""Plain-text result tables.

Every experiment driver produces a :class:`Table`: an ordered list of rows
with a fixed column schema. Tables render to aligned monospace text (for the
CLI and EXPERIMENTS.md) and to CSV (for downstream plotting).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table"]


class Table:
    """An ordered, fixed-schema result table.

    Parameters
    ----------
    columns:
        Ordered column names.
    title:
        Optional human-readable caption printed above the table.
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a Table requires at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns!r}")
        self.columns: tuple[str, ...] = tuple(columns)
        self.title = title
        self.rows: list[tuple[Any, ...]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row given positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass row values positionally or by name, not both")
        if named:
            missing = [c for c in self.columns if c not in named]
            if missing:
                raise ValueError(f"missing columns {missing} in named row")
            extra = [c for c in named if c not in self.columns]
            if extra:
                raise ValueError(f"unknown columns {extra} in named row")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def add_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows given as mappings."""
        for row in rows:
            self.add_row(**row)

    def column(self, name: str) -> list[Any]:
        """Return the values of one column, in row order."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        for row in self.rows:
            yield dict(zip(self.columns, row))

    # -- rendering --------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        cells = [list(self.columns)] + [
            [self._fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(line[i]) for line in cells) for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (no quoting; experiment values never contain commas)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(self._fmt(v) for v in row))
        return "\n".join(lines)

    def to_json(self, indent: "int | None" = None) -> str:
        """Render as a JSON object: title, columns, and rows as mappings.

        Values that are not JSON-native (e.g. numpy scalars) fall back to
        their ``str`` form, so every table serializes.
        """
        return json.dumps(
            {
                "title": self.title,
                "columns": list(self.columns),
                "rows": [dict(zip(self.columns, row)) for row in self.rows],
            },
            indent=indent,
            default=str,
        )

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored markdown table."""
        lines = []
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
