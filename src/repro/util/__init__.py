"""Shared utilities: seeded RNG management, statistics, tables, validation."""

from repro.util.rng import RandomSource, spawn_rng
from repro.util.stats import (
    Summary,
    geometric_tail,
    mean,
    median,
    percentile,
    stddev,
    summarize,
)
from repro.util.tables import Table
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomSource",
    "spawn_rng",
    "Summary",
    "Table",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "geometric_tail",
    "mean",
    "median",
    "percentile",
    "stddev",
    "summarize",
]
