"""Deterministic random-number management.

Every stochastic component in the library draws randomness through a
:class:`RandomSource`. A source is constructed from an integer seed and can
``spawn`` independent child sources, so that (a) whole experiments are
reproducible from a single seed, and (b) adding randomness consumption to one
component does not perturb the stream seen by another.

The implementation wraps :class:`random.Random` rather than numpy's
generators because the hot paths of the simulator draw single Bernoulli and
integer variates, where the pure-Python generator avoids per-call numpy
overhead. Bulk draws delegate to numpy when profitable.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

import numpy as np

__all__ = ["RandomSource", "spawn_rng"]

# Multiplier used to derive child seeds; a large odd constant keeps child
# streams decorrelated for the seed ranges used in experiments.
_SPAWN_MULTIPLIER = 0x9E3779B97F4A7C15


class RandomSource:
    """A seedable source of randomness with independent child streams.

    Parameters
    ----------
    seed:
        Non-negative integer seed. Two sources built from the same seed
        produce identical streams.
    """

    __slots__ = ("seed", "_rng", "_spawn_count", "_np_rng")

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._rng = random.Random(seed)
        self._spawn_count = 0
        self._np_rng: "np.random.Generator | None" = None

    def spawn(self) -> "RandomSource":
        """Return a child source whose stream is independent of this one.

        Children are derived from (seed, spawn index) so the k-th child of a
        given source is always the same, regardless of how much randomness
        the parent consumed in between.
        """
        self._spawn_count += 1
        child_seed = (self.seed * _SPAWN_MULTIPLIER + self._spawn_count) % (2**63)
        return RandomSource(child_seed)

    def spawn_many(self, count: int) -> list["RandomSource"]:
        """Return ``count`` independent child sources."""
        return [self.spawn() for _ in range(count)]

    # -- scalar draws -----------------------------------------------------

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence):
        """Uniformly random element of a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        """k distinct elements sampled uniformly without replacement."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric requires p in (0, 1], got {p}")
        trials = 1
        while not self.bernoulli(p):
            trials += 1
        return trials

    # -- bulk draws -------------------------------------------------------

    def _numpy_generator(self) -> np.random.Generator:
        """The derived numpy generator backing all bulk draws.

        Created lazily from this source's stream on first use and cached:
        repeated bulk draws advance one persistent generator instead of
        paying ``default_rng`` construction per call (bulk-stream v2; see
        PERFORMANCE.md).
        """
        if self._np_rng is None:
            self._np_rng = np.random.default_rng(self._rng.getrandbits(63))
        return self._np_rng

    def bernoulli_array(self, p: float, size: int) -> np.ndarray:
        """Boolean array of ``size`` independent Bernoulli(p) draws."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if p <= 0.0:
            return np.zeros(size, dtype=bool)
        if p >= 1.0:
            return np.ones(size, dtype=bool)
        return self._numpy_generator().random(size) < p

    def uniform_array(self, size: int) -> np.ndarray:
        """Array of ``size`` uniform floats in [0, 1).

        The bulk primitive behind heterogeneous Bernoulli draws (e.g.
        per-node loss rates in the Gilbert-Elliott adversary): drawing
        uniforms unconditionally keeps stream consumption independent of
        the per-element probabilities.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        return self._numpy_generator().random(size)

    def permutation_array(self, size: int) -> np.ndarray:
        """Uniformly random permutation of ``range(size)`` (int64)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self._numpy_generator().permutation(size).astype(np.int64)

    def bytes_array(self, size: int) -> np.ndarray:
        """Array of ``size`` uniform bytes (dtype uint8)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self._numpy_generator().integers(0, 256, size=size, dtype=np.uint8)

    def iter_bernoulli(self, p: float) -> Iterator[bool]:
        """Infinite iterator of Bernoulli(p) draws."""
        while True:
            yield self.bernoulli(p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed})"


def spawn_rng(seed_or_source: "int | RandomSource | None") -> RandomSource:
    """Coerce a seed, an existing source, or None into a RandomSource.

    ``None`` maps to seed 0 — the library is deterministic by default; callers
    wanting run-to-run variation must pass explicit seeds.
    """
    if seed_or_source is None:
        return RandomSource(0)
    if isinstance(seed_or_source, RandomSource):
        return seed_or_source
    if isinstance(seed_or_source, int):
        return RandomSource(seed_or_source)
    raise TypeError(
        "expected int seed, RandomSource, or None; "
        f"got {type(seed_or_source).__name__}"
    )
