"""Adaptive routing schedules (Definition 14) as a first-class framework.

Definition 14 gives adaptive routing maximal power: each round the schedule
sees (i) the entire topology and (ii) every tuple ``(u, i)`` such that node
u received message i in an earlier round, and dictates every node's action.
The star and single-link schedules in :mod:`repro.algorithms.multi` are
hand-specialized instances; this module provides the general interface plus
an executor on the real channel, so new adaptive strategies (and lower
bounds against *all* of them) can be expressed uniformly.

Implemented schedulers:

* :class:`GreedyFrontierScheduler` — a natural general-topology strategy:
  each round, pick the least-delivered message and have its holders run a
  Decay step toward nodes still missing it.
* :class:`RoundRobinSourceScheduler` — the Lemma 15 star strategy
  generalized: only the source broadcasts, cycling on the first
  not-yet-universal message.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.algorithms.base import ilog2
from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import MessagePacket
from repro.core.trace import ChannelCounters
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "AdaptiveOutcome",
    "AdaptiveScheduler",
    "GreedyFrontierScheduler",
    "RoundRobinSourceScheduler",
    "run_adaptive_schedule",
]


@dataclass(frozen=True)
class AdaptiveOutcome:
    """Result of executing an adaptive schedule."""

    success: bool
    rounds: int
    k: int
    completed_nodes: int
    total_nodes: int
    counters: ChannelCounters

    @property
    def rounds_per_message(self) -> float:
        return self.rounds / self.k


class AdaptiveScheduler(abc.ABC):
    """The Definition 14 interface.

    ``decide`` receives the full reception history as ``knowledge`` —
    ``knowledge[v]`` is the set of message indices v has received (the
    source starts with all of them) — and returns this round's broadcast
    assignment ``{node: message_index}``. A node assigned a message it
    does not hold is kept silent by the executor (the paper's routing
    rule).
    """

    def __init__(self, network: RadioNetwork, k: int) -> None:
        check_positive(k, "k")
        self.network = network
        self.k = k

    @abc.abstractmethod
    def decide(
        self,
        round_index: int,
        knowledge: list[set[int]],
        rng: RandomSource,
    ) -> dict[int, int]:
        """Pick this round's broadcasters given the full history."""


class RoundRobinSourceScheduler(AdaptiveScheduler):
    """Only the source broadcasts: the lowest message some node misses.

    On the star this is exactly Lemma 15's schedule; on general networks
    it is a (deliberately weak) single-broadcaster baseline.
    """

    def decide(
        self,
        round_index: int,
        knowledge: list[set[int]],
        rng: RandomSource,
    ) -> dict[int, int]:
        for message in range(self.k):
            if any(message not in have for have in knowledge):
                return {self.network.source: message}
        return {}


class GreedyFrontierScheduler(AdaptiveScheduler):
    """Holders of the least-complete message run a Decay step toward it.

    Each round: find the message with the most missing nodes, restrict to
    holders with at least one missing neighbor (the frontier), and let the
    frontier broadcast with the Decay probability ``2^-(t mod phase)`` —
    adaptivity picks *what* to send, randomness resolves *who*, which is
    the pattern the paper's possibility results (Lemmas 20-21) use.
    """

    def decide(
        self,
        round_index: int,
        knowledge: list[set[int]],
        rng: RandomSource,
    ) -> dict[int, int]:
        missing_counts = [
            (sum(1 for have in knowledge if message not in have), message)
            for message in range(self.k)
        ]
        worst_missing, message = max(missing_counts)
        if worst_missing == 0:
            return {}
        frontier = [
            v
            for v in self.network.nodes()
            if message in knowledge[v]
            and any(
                message not in knowledge[u] for u in self.network.neighbors[v]
            )
        ]
        phase = ilog2(self.network.n) + 1
        probability = 2.0 ** (-(round_index % phase))
        return {
            v: message for v in frontier if rng.bernoulli(probability)
        }


def run_adaptive_schedule(
    scheduler: AdaptiveScheduler,
    faults: FaultConfig,
    rng: "int | RandomSource | None" = None,
    max_rounds: "int | None" = None,
) -> AdaptiveOutcome:
    """Execute an adaptive scheduler against the real channel.

    The executor maintains the Definition 14 history (who received what,
    when), feeds it to the scheduler each round, silences nodes assigned
    messages they lack, and stops when every node holds all k messages or
    the budget runs out.
    """
    network = scheduler.network
    k = scheduler.k
    source = spawn_rng(rng)
    channel = Channel(network, faults, source.spawn())
    decide_rng = source.spawn()
    if max_rounds is None:
        log_n = ilog2(network.n) + 1
        max_rounds = int(
            80 * k * log_n * log_n / (1.0 - faults.p)
        ) + 400

    knowledge: list[set[int]] = [set() for _ in network.nodes()]
    knowledge[network.source] = set(range(k))

    rounds = 0
    while rounds < max_rounds:
        if all(len(have) == k for have in knowledge):
            break
        wanted = scheduler.decide(rounds, knowledge, decide_rng)
        actions = {
            node: MessagePacket(message)
            for node, message in wanted.items()
            if message in knowledge[node]
        }
        result = channel.transmit(actions)
        rounds += 1
        for delivery in result.deliveries:
            knowledge[delivery.receiver].add(delivery.packet.index)

    completed = sum(1 for have in knowledge if len(have) == k)
    return AdaptiveOutcome(
        success=completed == network.n,
        rounds=rounds,
        k=k,
        completed_nodes=completed,
        total_nodes=network.n,
        counters=channel.counters,
    )
