"""Static routing schedules (Section 3.1's schedule formalism).

A :class:`StaticRoutingSchedule` fixes, for every round, which nodes
broadcast which message index — independent of outcomes, exactly as the
paper's ``b_u^r`` functions with no inputs. Executing one on a faultless
channel yields the :class:`ReferenceExecution`: the delivery relation the
Lemma 25/26 transformations must preserve under faults.

Two canonical faultless schedules ship with the library:

* :func:`star_schedule` — source sends each message once (throughput 1 on
  the star).
* :func:`path_pipeline_schedule` — messages pipelined down a path with
  mod-3 spacing (no two broadcasters within distance 2, so no collisions;
  throughput 1/3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import MessagePacket
from repro.topologies.basic import path, star
from repro.util.validation import check_positive

__all__ = [
    "StaticRoutingSchedule",
    "ReferenceExecution",
    "execute_reference",
    "star_schedule",
    "path_pipeline_schedule",
]


@dataclass
class StaticRoutingSchedule:
    """A fixed round-by-round broadcast table.

    ``rounds[r]`` maps broadcasting node -> message index for round r.
    ``k`` is the number of distinct messages the schedule carries.
    """

    network: RadioNetwork
    k: int
    rounds: list[dict[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive(self.k, "k")
        for r, actions in enumerate(self.rounds):
            for node, message in actions.items():
                if not 0 <= node < self.network.n:
                    raise ValueError(f"round {r}: unknown node {node}")
                if not 0 <= message < self.k:
                    raise ValueError(
                        f"round {r}: message index {message} out of range"
                    )

    @property
    def length(self) -> int:
        return len(self.rounds)

    @property
    def throughput(self) -> float:
        """Messages per round carried by this schedule."""
        return self.k / self.length if self.length else 0.0


@dataclass(frozen=True)
class ReferenceExecution:
    """What a schedule achieves on the faultless channel.

    ``deliveries[r]`` lists ``(receiver, sender, message)`` for round r;
    ``known`` maps node -> set of message indices it ends up holding.
    """

    deliveries: list[list[tuple[int, int, int]]]
    known: dict[int, set[int]]


def execute_reference(schedule: StaticRoutingSchedule) -> ReferenceExecution:
    """Run the schedule on a faultless channel and record its deliveries.

    A node scheduled to broadcast a message it has not yet received stays
    silent (the paper's rule for routing schedules).
    """
    network = schedule.network
    channel = Channel(network, FaultConfig.faultless(), rng=0)
    known: dict[int, set[int]] = {v: set() for v in network.nodes()}
    known[network.source] = set(range(schedule.k))
    deliveries: list[list[tuple[int, int, int]]] = []
    for actions in schedule.rounds:
        live = {
            node: MessagePacket(message)
            for node, message in actions.items()
            if message in known[node]
        }
        result = channel.transmit(live)
        this_round = []
        for d in result.deliveries:
            known[d.receiver].add(d.packet.index)
            this_round.append((d.receiver, d.sender, d.packet.index))
        deliveries.append(this_round)
    return ReferenceExecution(deliveries=deliveries, known=known)


def star_schedule(n_leaves: int, k: int) -> StaticRoutingSchedule:
    """Faultless star schedule: the source sends each message once."""
    check_positive(n_leaves, "n_leaves")
    check_positive(k, "k")
    network = star(n_leaves)
    rounds = [{network.source: i} for i in range(k)]
    return StaticRoutingSchedule(network=network, k=k, rounds=rounds)


def path_pipeline_schedule(n: int, k: int) -> StaticRoutingSchedule:
    """Faultless pipelined path schedule with mod-3 collision spacing.

    Node ``i`` broadcasts message ``j`` at round ``3j + i``. Broadcasters
    in any round are congruent mod 3, so no listener ever hears two of
    them; message j advances one hop per round behind message j-1.
    """
    if n < 2:
        raise ValueError(f"the pipeline needs a path of >= 2 nodes, got {n}")
    check_positive(k, "k")
    network = path(n)
    length = 3 * (k - 1) + (n - 1)
    rounds: list[dict[int, int]] = [dict() for _ in range(length)]
    for j in range(k):
        for i in range(n - 1):  # the last node never needs to forward
            r = 3 * j + i
            if r < length:
                rounds[r][i] = j
    return StaticRoutingSchedule(network=network, k=k, rounds=rounds)
