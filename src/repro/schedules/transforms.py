"""The faultless-to-faulty schedule transformations (Lemmas 25-26).

Both transformations blow each original round up into a *meta-round* and
each original message up into ``x`` sub-messages, keeping throughput within
a ``(1-p)(1±η)`` factor of the faultless schedule:

* **Routing / sender faults** (Lemma 25): in its meta-round a broadcaster
  retransmits each sub-message until the transmission is clean (senders can
  observe their own faults under adaptivity), then moves on, going silent
  once all ``x`` are through. Early silence can only remove collisions, so
  every reference receiver still hears its reference sender.
* **Coding / sender or receiver faults** (Lemma 26): a broadcaster
  Reed-Solomon-encodes its ``x`` per-sub-instance coded packets into
  ``ceil(x/((1-p)(1-η)))`` packets and streams them; a reference receiver
  decodes its meta-round if it catches any ``x`` of them.

Success is judged against the faultless :class:`ReferenceExecution`: every
delivery the original schedule made must be reproduced (all ``x``
sub-messages, resp. ``>= x`` coded packets) in the corresponding meta-round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.engine import Channel
from repro.core.faults import FaultConfig, FaultModel
from repro.core.packets import MessagePacket, RSPacket
from repro.schedules.schedule import (
    ReferenceExecution,
    StaticRoutingSchedule,
    execute_reference,
)
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive, check_probability

__all__ = [
    "TransformOutcome",
    "transform_routing_schedule",
    "transform_coding_schedule",
]


@dataclass(frozen=True)
class TransformOutcome:
    """Result of executing a transformed schedule under faults.

    ``throughput_ratio`` compares messages-per-round of the transformed
    run against the faultless original; Lemmas 25-26 predict it
    concentrates near ``(1-p)`` for large ``x``.
    """

    success: bool
    original_rounds: int
    transformed_rounds: int
    k_original: int
    x: int
    meta_round_length: int
    #: reference deliveries that were fully reproduced
    reproduced: int
    #: total reference deliveries
    expected: int

    @property
    def k_transformed(self) -> int:
        return self.k_original * self.x

    @property
    def throughput_original(self) -> float:
        return self.k_original / self.original_rounds

    @property
    def throughput_transformed(self) -> float:
        return self.k_transformed / self.transformed_rounds

    @property
    def throughput_ratio(self) -> float:
        """transformed / original throughput; ~ (1-p) per the lemmas."""
        return self.throughput_transformed / self.throughput_original


def _meta_round_length(x: int, p: float, eta: float) -> int:
    return max(x, math.ceil(x * (1.0 + eta) / (1.0 - p)))


def transform_routing_schedule(
    schedule: StaticRoutingSchedule,
    x: int,
    p: float,
    eta: float = 0.5,
    rng: "int | RandomSource | None" = None,
    reference: "ReferenceExecution | None" = None,
) -> TransformOutcome:
    """Execute the Lemma 25 transformation under sender faults.

    Parameters
    ----------
    schedule:
        A faultless static routing schedule.
    x:
        Sub-messages per original message (the lemma takes
        ``x = Ω(log(n k / τ) / η²)`` for failure probability 1/k'; the
        experiments sweep x and watch the success rate rise).
    p:
        Sender-fault probability.
    eta:
        Meta-round slack η.
    reference:
        Precomputed faultless execution (recomputed if omitted).
    """
    check_positive(x, "x")
    check_probability(p, "p")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    source = spawn_rng(rng)
    if reference is None:
        reference = execute_reference(schedule)

    network = schedule.network
    channel = Channel(network, FaultConfig.sender(p), source.spawn())
    length = _meta_round_length(x, p, eta)

    # count, per meta-round, how many sub-message deliveries each
    # reference (receiver, sender) pair accumulated
    reproduced = 0
    expected = 0
    known: dict[int, set[int]] = {v: set() for v in network.nodes()}
    known[network.source] = set(range(schedule.k))

    for r, actions in enumerate(schedule.rounds):
        live_broadcasters = {
            node: message
            for node, message in actions.items()
            if message in known[node]
        }
        sent_count = {node: 0 for node in live_broadcasters}
        got_count = {
            (receiver, sender): 0
            for receiver, sender, _ in reference.deliveries[r]
        }
        for _ in range(length):
            live = {
                node: MessagePacket(message)
                for node, message in live_broadcasters.items()
                if sent_count[node] < x
            }
            if not live:
                break
            result = channel.transmit(live)
            faulty = set(result.faulty_senders)
            # adaptive senders advance on every clean transmission
            for node in live:
                if node not in faulty:
                    sent_count[node] += 1
            for d in result.deliveries:
                key = (d.receiver, d.sender)
                if key in got_count:
                    got_count[key] += 1
        for (receiver, sender), count in got_count.items():
            expected += 1
            if count >= x:
                reproduced += 1
                message = next(
                    m
                    for rcv, snd, m in reference.deliveries[r]
                    if (rcv, snd) == (receiver, sender)
                )
                known[receiver].add(message)

    return TransformOutcome(
        success=reproduced == expected
        and all(
            known[v] >= reference.known[v] for v in network.nodes()
        ),
        original_rounds=schedule.length,
        transformed_rounds=schedule.length * length,
        k_original=schedule.k,
        x=x,
        meta_round_length=length,
        reproduced=reproduced,
        expected=expected,
    )


def transform_coding_schedule(
    schedule: StaticRoutingSchedule,
    x: int,
    p: float,
    fault_model: FaultModel = FaultModel.RECEIVER,
    eta: float = 0.5,
    rng: "int | RandomSource | None" = None,
    reference: "ReferenceExecution | None" = None,
) -> TransformOutcome:
    """Execute the Lemma 26 transformation under either fault model.

    Every original broadcaster streams ``ceil(x(1+η)/(1-p))`` distinct
    Reed-Solomon packets through its meta-round (static — no adaptivity
    needed); a reference receiver reproduces its delivery iff it catches at
    least ``x`` of them (the MDS property, tested in
    :mod:`repro.coding.reed_solomon`, then reconstructs all ``x``
    sub-instance packets).
    """
    check_positive(x, "x")
    check_probability(p, "p")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    if fault_model is FaultModel.NONE:
        raise ValueError("transform_coding_schedule expects a faulty model")
    source = spawn_rng(rng)
    if reference is None:
        reference = execute_reference(schedule)

    network = schedule.network
    channel = Channel(network, FaultConfig(fault_model, p), source.spawn())
    length = _meta_round_length(x, p, eta)

    reproduced = 0
    expected = 0
    # In the coding transformation a node's ability to broadcast in
    # meta-round r depends on having decoded its earlier receptions; track
    # which nodes fell behind and treat their later broadcasts as noise
    # (conservative: failures propagate as the lemma's analysis requires).
    decoded_ok: dict[int, bool] = {v: True for v in network.nodes()}

    for r, actions in enumerate(schedule.rounds):
        got_count = {
            (receiver, sender): 0
            for receiver, sender, _ in reference.deliveries[r]
        }
        for j in range(length):
            live = {
                node: RSPacket(coded_index=j)
                for node in actions
                if decoded_ok[node]
            }
            result = channel.transmit(live)
            for d in result.deliveries:
                key = (d.receiver, d.sender)
                if key in got_count:
                    got_count[key] += 1
        for (receiver, sender), count in got_count.items():
            expected += 1
            if count >= x:
                reproduced += 1
            else:
                decoded_ok[receiver] = False

    return TransformOutcome(
        success=reproduced == expected,
        original_rounds=schedule.length,
        transformed_rounds=schedule.length * length,
        k_original=schedule.k,
        x=x,
        meta_round_length=length,
        reproduced=reproduced,
        expected=expected,
    )
