"""Static schedules and the faultless-to-faulty transformations.

Section 3.1 defines a *schedule* as a static assignment of per-round
behaviour; Section 5.2 proves that faultless schedules transform into
fault-robust ones at constant throughput cost (Lemma 25 for routing under
sender faults, Lemma 26 for coding under either fault model). This package
implements static routing schedules, a reference executor, and both
transformations.
"""

from repro.schedules.schedule import (
    ReferenceExecution,
    StaticRoutingSchedule,
    execute_reference,
    path_pipeline_schedule,
    star_schedule,
)
from repro.schedules.transforms import (
    TransformOutcome,
    transform_coding_schedule,
    transform_routing_schedule,
)

__all__ = [
    "ReferenceExecution",
    "StaticRoutingSchedule",
    "TransformOutcome",
    "execute_reference",
    "path_pipeline_schedule",
    "star_schedule",
    "transform_coding_schedule",
    "transform_routing_schedule",
]
