"""Scenario: hardening an existing TDMA schedule against radio noise.

You have a hand-built, collision-free pipeline schedule for a relay chain
(designed assuming a clean channel) and your deployment turns out to have
faulty radios. The paper's Lemma 25/26 transformations upgrade the
schedule mechanically:

* Lemma 25 (routing, sender faults): retransmit each sub-message until it
  leaves the antenna cleanly;
* Lemma 26 (coding, sender or receiver faults): Reed-Solomon across each
  meta-round, no feedback needed at all.

Both cost only a ~1/(1-p) throughput factor — the schedule's structure
(and your engineering effort) survives.

Run with::

    python examples/schedule_hardening.py
"""

from repro.core.faults import FaultModel
from repro.schedules import (
    path_pipeline_schedule,
    transform_coding_schedule,
    transform_routing_schedule,
)


def main() -> None:
    schedule = path_pipeline_schedule(n=10, k=6)
    print(
        f"original schedule: {schedule.k} messages in {schedule.length} "
        f"rounds over a 10-relay chain "
        f"(throughput {schedule.throughput:.3f} msg/round, faultless)"
    )

    p = 0.3
    print(f"\nhardening for fault probability p={p}:")

    routing = transform_routing_schedule(schedule, x=32, p=p, rng=1)
    print(
        f"  Lemma 25 (routing, sender faults): "
        f"{routing.k_transformed} messages in {routing.transformed_rounds} "
        f"rounds -> throughput ratio {routing.throughput_ratio:.2f} "
        f"(success={routing.success})"
    )

    for model in (FaultModel.SENDER, FaultModel.RECEIVER):
        coding = transform_coding_schedule(
            schedule, x=32, p=p, fault_model=model, rng=1
        )
        print(
            f"  Lemma 26 (coding, {model} faults):  "
            f"{coding.k_transformed} messages in {coding.transformed_rounds} "
            f"rounds -> throughput ratio {coding.throughput_ratio:.2f} "
            f"(success={coding.success})"
        )

    eta = 0.5  # the transforms' default meta-round slack
    predicted = (1 - p) / (1 + eta)
    print(
        f"\nboth land near the predicted (1-p)/(1+η) = {predicted:.2f} of "
        "the faultless throughput; as x grows, η can shrink toward 0 and "
        "the ratio approaches (1-p) — the Lemma 25/26 'constant overhead'."
    )


if __name__ == "__main__":
    main()
