"""Sweep farming with the result store: interrupt, resume, query — free.

A 100-scenario Decay-vs-RLNC sweep runs against a content-addressed
:class:`repro.ResultStore`. We simulate a crash halfway through (the
process "dies" after half the batch), then resume: every scenario that
already finished is a cache hit — one SQLite read, byte-identical to a
fresh run — and only the missing half computes. Finally the
Decay-vs-RLNC gap table comes straight out of the store, without
re-running anything.

The same flow from the shell::

    repro sweep --algorithms decay,rlnc_decay --topology path --n 48 \\
        --fault-model receiver --p 0.3 --seeds 0:50 \\
        --store farm.db --resume
    repro store farm.db

Run with::

    python examples/sweep_farm.py
"""

import tempfile
import time
from collections import defaultdict
from pathlib import Path

from repro import FaultConfig, ResultStore, Scenario, run_batch
from repro.runner import expand_grid


def main() -> None:
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 48, "seed": 0},
        faults=FaultConfig.receiver(0.3),
    )
    scenarios = expand_grid(
        base, seeds=range(50), grid={"algorithm": ["decay", "rlnc_decay"]}
    )
    store_path = str(Path(tempfile.mkdtemp(prefix="sweep-farm-")) / "farm.db")
    print(f"{len(scenarios)}-scenario sweep against {store_path}\n")

    # -- first attempt: "killed" halfway through ----------------------------
    half = scenarios[: len(scenarios) // 2]
    with ResultStore(store_path) as store:
        start = time.perf_counter()
        run_batch(half, store=store)
        print(
            f"attempt 1: computed {len(half)}/{len(scenarios)} scenarios in "
            f"{time.perf_counter() - start:.2f}s — then the process died"
        )

    # -- resume: a fresh process, the full sweep, half of it cached ---------
    with ResultStore(store_path) as store:
        already = sum(s.cache_key() in store for s in scenarios)
        start = time.perf_counter()
        reports = run_batch(scenarios, store=store)
        elapsed = time.perf_counter() - start
        print(
            f"attempt 2: {already} cache hits, "
            f"{len(scenarios) - already} fresh runs, {elapsed:.2f}s"
        )

        # a third pass is pure replay: every scenario is one SQLite read
        start = time.perf_counter()
        replay = run_batch(scenarios, store=store)
        print(
            f"attempt 3: fully cached replay in "
            f"{time.perf_counter() - start:.3f}s"
        )
        assert [r.to_json(canonical=True) for r in replay] == [
            r.to_json(canonical=True) for r in reports
        ]

        # -- the Decay-vs-RLNC gap table, served from the store -------------
        # rlnc_decay delivers k messages per run, so compare rounds per
        # delivered message — the coding throughput gap the paper is about
        print("\nmean rounds per delivered message (straight from the store):")
        per_message = defaultdict(list)
        for algorithm in ("decay", "rlnc_decay"):
            for report in store.query(algorithm=algorithm):
                messages = report.extras.get("k", 1)
                per_message[algorithm].append(report.rounds / messages)
        for algorithm, values in sorted(per_message.items()):
            mean = sum(values) / len(values)
            print(f"  {algorithm:<12} {mean:>8.1f}  ({len(values)} runs)")
        decay = sum(per_message["decay"]) / len(per_message["decay"])
        rlnc = sum(per_message["rlnc_decay"]) / len(per_message["rlnc_decay"])
        print(
            "\nRLNC-vs-Decay rounds-per-message ratio on the noisy path: "
            f"{rlnc / decay:.2f}x (k=4 coded messages amortize the pipeline "
            "only on longer schedules)"
        )


if __name__ == "__main__":
    main()
