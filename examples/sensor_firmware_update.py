"""Scenario: firmware update dissemination over a noisy sensor grid.

A 7x7 grid of battery-powered sensors must all receive a firmware image
split into k chunks, pushed from the gateway at one corner. Radio
reception is lossy (receiver faults). This is exactly the paper's
multi-message broadcast problem, and the example contrasts:

* naive routing ("send chunk i until everyone has it" — here approximated
  by running Decay once per chunk), and
* RLNC gossip (Lemma 12), where every transmission is a random
  combination of known chunks and nothing is wasted.

The payloads are real bytes; the script verifies every sensor decodes the
exact image.

Run with::

    python examples/sensor_firmware_update.py
"""

from repro import FaultConfig, decay_broadcast, grid, rlnc_decay_broadcast
from repro.util.rng import RandomSource


def main() -> None:
    network = grid(7, 7)
    k = 8
    chunk_bytes = 32
    p = 0.3
    faults = FaultConfig.receiver(p)

    rng = RandomSource(42)
    firmware = [bytes(rng.bytes_array(chunk_bytes).tobytes()) for _ in range(k)]
    print(
        f"pushing {k} x {chunk_bytes}B firmware chunks over {network.name} "
        f"(n={network.n}) at receiver-fault rate p={p}"
    )

    # Baseline: one full single-message broadcast per chunk, sequentially.
    sequential_rounds = 0
    for chunk in range(k):
        outcome = decay_broadcast(network, faults=faults, rng=100 + chunk)
        assert outcome.success
        sequential_rounds += outcome.rounds
    print(f"\nsequential per-chunk Decay : {sequential_rounds:5d} rounds")

    # RLNC gossip: all chunks in flight at once, every reception useful.
    outcome = rlnc_decay_broadcast(
        network,
        k=k,
        faults=faults,
        rng=7,
        payload_length=chunk_bytes,
        messages=firmware,
    )
    assert outcome.success, "RLNC broadcast did not complete"
    print(f"RLNC gossip (Lemma 12)     : {outcome.rounds:5d} rounds")
    print(
        f"speedup: {sequential_rounds / outcome.rounds:.1f}x "
        f"({outcome.rounds_per_message:.1f} rounds/chunk)"
    )
    print("\nevery sensor decoded the exact firmware image "
          "(verified by the RLNC layer)")


if __name__ == "__main__":
    main()
