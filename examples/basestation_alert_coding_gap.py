"""Scenario: a base station pushing alert bulletins to noisy handsets.

One transmitter (the star hub) must deliver k alert bulletins to n
handsets whose receivers independently drop packets (receiver faults).
This is the paper's star topology (Section 5.1.1), and the example
replays the Theorem 17 story end to end:

* plain retransmission (adaptive routing, Lemma 15) pays a last-straggler
  penalty of ~log2(n) transmissions per bulletin at p = 1/2;
* Reed-Solomon coding (Lemma 16) makes every successful reception count
  — ~2 transmissions per bulletin, independent of n.

The coding gap grows like log n: with enough handsets, coding is an
order of magnitude better, which is the paper's answer to "does coding
help in practice?".

Run with::

    python examples/basestation_alert_coding_gap.py
"""

from repro import star_adaptive_routing, star_rs_coding


def main() -> None:
    k = 32
    p = 0.5
    print(f"delivering {k} bulletins at receiver-fault rate p={p}\n")
    print(f"{'handsets':>9} {'routing':>9} {'coding':>8} {'gap':>6}")
    for n_handsets in (16, 64, 256, 1024):
        routing = star_adaptive_routing(n_handsets, k, p, rng=1)
        coding = star_rs_coding(n_handsets, k, p, rng=1)
        assert routing.success and coding.success
        gap = routing.rounds / coding.rounds
        print(
            f"{n_handsets:>9} {routing.rounds:>9} {coding.rounds:>8} "
            f"{gap:>6.2f}"
        )
    print(
        "\nthe routing column grows with log(handsets); the coding column "
        "stays ~2k.\nThat ratio is the paper's Θ(log n) receiver-fault "
        "coding gap (Theorem 17)."
    )

    # The asymmetry that motivates the whole paper: with *sender* faults
    # the same comparison collapses to a constant gap (Theorem 28),
    # because a sender fault silences every handset at once.
    from repro.core.faults import FaultModel

    routing = star_adaptive_routing(
        1024, k, p, rng=2, fault_model=FaultModel.SENDER
    )
    coding = star_rs_coding(1024, k, p, rng=2, fault_model=FaultModel.SENDER)
    print(
        f"\nsender faults instead (n=1024): routing {routing.rounds}, "
        f"coding {coding.rounds}, gap {routing.rounds / coding.rounds:.2f} "
        "— Θ(1), as Theorem 28 predicts"
    )


if __name__ == "__main__":
    main()
