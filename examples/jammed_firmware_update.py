"""Scenario: firmware update dissemination against an adaptive jammer.

A 5x5 grid of sensors must receive firmware from the gateway while an
adversary with a limited energy budget jams receptions — up to one per
round, targeting the broadcast *frontier* (nodes about to hear something
for the first time), the strongest policy against wave-style
dissemination.

The example pits the same :class:`BudgetedJammer` against two
dissemination strategies through the declarative Scenario API:

* **FASTBC** (wave routing): each level waits on one particular
  transmission, so silencing the frontier stalls the whole wave — the
  jammer's budget converts almost 1:1 into delay;
* **RLNC gossip** (Lemma 12 coding): every transmission is a random
  combination of everything known, *any* reception is useful, so
  frontier-tracking loses its leverage and the same budget buys almost
  nothing.

This is the paper's coding-vs-routing gap restated adversarially: codes
do not just average out i.i.d. noise, they remove the single points of
failure an adaptive adversary aims at.

Run with::

    python examples/jammed_firmware_update.py
"""

from repro import AdversaryConfig, Scenario, run

N = 25  # 5x5 sensor grid
BUDGET = 60  # total receptions the jammer can afford to silence
JAMMER = AdversaryConfig(
    "budgeted_jammer", {"per_round": 1, "budget": BUDGET, "policy": "frontier"}
)


def main() -> None:
    print(
        f"firmware push over a 5x5 grid (n={N}); frontier-tracking jammer "
        f"with a {BUDGET}-reception budget, 1 per round\n"
    )
    for algorithm, params, label in (
        ("fastbc", {}, "FASTBC wave"),
        ("rlnc_decay", {"k": 4, "payload_length": 16}, "RLNC gossip (k=4)"),
    ):
        base = Scenario(
            algorithm=algorithm,
            topology="grid",
            topology_params={"n": N},
            params=params,
            seed=7,
        )
        clean = run(base)
        jammed = run(base.with_(adversary=JAMMER))
        assert clean.success and jammed.success, (
            "jammer exceeded its budget's reach"
        )
        silenced = jammed.counters["receiver_faults"]
        print(f"{label}:")
        print(f"  clean channel : {clean.rounds:5d} rounds")
        print(
            f"  jammed        : {jammed.rounds:5d} rounds "
            f"({jammed.rounds / clean.rounds:.2f}x slowdown, "
            f"{silenced} receptions silenced)"
        )
    print(
        "\nthe same jammer stalls the wave but barely dents coded gossip: "
        "with RLNC\nevery reception is useful, so there is no frontier "
        "worth jamming — and once\nthe budget is spent, both complete"
    )


if __name__ == "__main__":
    main()
