"""Quickstart: broadcast one message through a noisy radio network.

Builds a 64-node path, runs the three single-message algorithms from the
paper under receiver faults, and prints what the theory says you should
see: Decay is robust, plain FASTBC degrades (Lemma 10), Robust FASTBC
keeps its wave moving (Theorem 11).

Run with::

    python examples/quickstart.py
"""

from repro import (
    FaultConfig,
    decay_broadcast,
    fastbc_broadcast,
    path,
    robust_fastbc_broadcast,
)


def main() -> None:
    network = path(64)
    print(f"topology: {network.name} (n={network.n}, D={network.diameter})")

    for p in (0.0, 0.3, 0.5):
        faults = (
            FaultConfig.faultless() if p == 0.0 else FaultConfig.receiver(p)
        )
        decay = decay_broadcast(network, faults=faults, rng=1)
        fastbc = fastbc_broadcast(network, faults=faults, rng=1)
        robust = robust_fastbc_broadcast(network, faults=faults, rng=1)
        print(f"\nreceiver-fault probability p = {p}")
        print(f"  Decay         : {decay.rounds:5d} rounds (Lemma 9: fault-robust)")
        print(f"  FASTBC        : {fastbc.rounds:5d} rounds (Lemma 10: degrades)")
        print(f"  Robust FASTBC : {robust.rounds:5d} rounds (Theorem 11)")

    # The wave-isolated comparison shows the asymptotic shape directly
    # (deeper path so the Θ(log n)-per-drop penalty separates cleanly):
    deep = path(256)
    print(f"\nwave-only comparison on {deep.name} at p = 0.5 "
          "(no Decay interleave):")
    faults = FaultConfig.receiver(0.5)
    plain = fastbc_broadcast(
        deep, faults=faults, rng=2, decay_interleave=False
    )
    robust = robust_fastbc_broadcast(
        deep, faults=faults, rng=2, decay_interleave=False
    )
    print(f"  plain wave  : {plain.rounds:5d} rounds "
          f"({plain.rounds / (deep.n - 1):.1f}/hop — pays Θ(log n) per drop)")
    print(f"  robust wave : {robust.rounds:5d} rounds "
          f"({robust.rounds / (deep.n - 1):.1f}/hop — blocks absorb drops)")


if __name__ == "__main__":
    main()
