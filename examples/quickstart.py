"""Quickstart: declare scenarios, run them, compare the paper's algorithms.

Every broadcast algorithm in the library runs through one declarative
entry point: build a :class:`repro.Scenario` (topology + algorithm +
faults + seed) and hand it to :func:`repro.run`, which returns a
JSON-serializable :class:`repro.RunReport`.

The comparison below shows what the theory says you should see on a
64-node path: Decay is robust (Lemma 9), plain FASTBC degrades under
faults (Lemma 10), Robust FASTBC keeps its wave moving (Theorem 11).

Run with::

    python examples/quickstart.py
"""

from repro import FaultConfig, Scenario, run

CLAIMS = {
    "decay": "Lemma 9: fault-robust",
    "fastbc": "Lemma 10: degrades",
    "robust_fastbc": "Theorem 11",
}


def main() -> None:
    for p in (0.0, 0.3, 0.5):
        faults = (
            FaultConfig.faultless() if p == 0.0 else FaultConfig.receiver(p)
        )
        print(f"\nreceiver-fault probability p = {p}")
        for algorithm, claim in CLAIMS.items():
            report = run(
                Scenario(
                    algorithm=algorithm,
                    topology="path",
                    topology_params={"n": 64},
                    faults=faults,
                    seed=1,
                )
            )
            print(f"  {algorithm:<14}: {report.rounds:5d} rounds ({claim})")

    # The wave-isolated comparison shows the asymptotic shape directly
    # (deeper path so the Θ(log n)-per-drop penalty separates cleanly):
    print("\nwave-only comparison on path(256) at p = 0.5 "
          "(no Decay interleave):")
    deep = Scenario(
        algorithm="fastbc",
        topology="path",
        topology_params={"n": 256},
        params={"decay_interleave": False},
        faults=FaultConfig.receiver(0.5),
        seed=2,
    )
    plain = run(deep)
    robust = run(deep.with_(algorithm="robust_fastbc"))
    hops = deep.topology_params["n"] - 1
    print(f"  plain wave  : {plain.rounds:5d} rounds "
          f"({plain.rounds / hops:.1f}/hop — pays Θ(log n) per drop)")
    print(f"  robust wave : {robust.rounds:5d} rounds "
          f"({robust.rounds / hops:.1f}/hop — blocks absorb drops)")

    # Every report serializes; a sweep of these is a JSON results file.
    print("\none report as canonical JSON:")
    print(plain.to_json(indent=2, canonical=True)[:320] + " ...")

    # The pre-scenario entry points still work, as thin wrappers over the
    # same implementations:
    from repro import decay_broadcast, path

    outcome = decay_broadcast(path(64), faults=FaultConfig.receiver(0.3), rng=1)
    print(f"\nlegacy API, same engine: decay_broadcast -> "
          f"{outcome.rounds} rounds, success={outcome.success}")


if __name__ == "__main__":
    main()
