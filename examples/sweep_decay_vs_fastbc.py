"""Parallel scenario sweep: Decay vs FASTBC across fault rates and seeds.

One base :class:`repro.Scenario` plus a grid declaration replaces the
hand-rolled loops the per-algorithm API used to require:
:func:`repro.sweep` expands the Cartesian product (algorithm x fault
config, with seeds varying fastest), fans it out across a worker pool,
and returns canonical :class:`repro.RunReport` records ready for JSON.

The same sweep is available from the shell::

    repro sweep --algorithms decay,fastbc --topology path --n 48 \\
        --fault-model receiver --p 0.3 --seeds 0:4 --processes 2

Run with::

    python examples/sweep_decay_vs_fastbc.py
"""

import json
from collections import defaultdict

from repro import FaultConfig, Scenario, sweep


def main() -> None:
    base = Scenario(
        algorithm="decay",
        topology="path",
        # pin the topology seed so every scenario shares one network
        topology_params={"n": 48, "seed": 0},
    )
    reports = sweep(
        base,
        seeds=range(4),
        grid={
            "algorithm": ["decay", "fastbc"],
            "faults": [FaultConfig.faultless(), FaultConfig.receiver(0.4)],
        },
        processes=2,
    )
    print(f"ran {len(reports)} scenarios (2 algorithms x 2 fault configs "
          "x 4 seeds) on 2 worker processes\n")

    # aggregate: mean rounds per (algorithm, fault config)
    rounds = defaultdict(list)
    for report in reports:
        faults = report.scenario["faults"]
        label = "faultless" if faults["p"] == 0 else f"receiver p={faults['p']}"
        rounds[(report.algorithm, label)].append(report.rounds)
    print(f"{'algorithm':<10} {'faults':<16} {'mean rounds':>12}")
    for (algorithm, label), values in sorted(rounds.items()):
        print(f"{algorithm:<10} {label:<16} {sum(values) / len(values):>12.1f}")

    # every record is plain JSON — this is the sweep's report format
    print("\nfirst record:")
    print(json.dumps(reports[0].to_dict(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
