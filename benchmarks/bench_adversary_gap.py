"""Benchmark E20: adversary completion-time gaps (bursty + jamming noise).

Regenerates the E20 table through the scenario/adversary stack. The
benchmarked quantity is the wall-clock of one full experiment sweep at
smoke scale; pass ``--repro-scale=full`` (see conftest) to regenerate
the EXPERIMENTS.md scale. The table is attached to the benchmark's
``extra_info`` so results stay inspectable in the pytest-benchmark JSON.
"""

from repro.experiments import get_experiment


def test_bench_adversary_gap(benchmark, repro_scale):
    experiment = get_experiment("E20")
    table = benchmark.pedantic(
        lambda: experiment(scale=repro_scale, seed=0), rounds=1, iterations=1
    )
    assert len(table) > 0
    benchmark.extra_info["experiment"] = "E20"
    benchmark.extra_info["claim"] = "structured adversaries vs i.i.d. coins"
    benchmark.extra_info["table"] = table.to_csv()
