"""Analysis throughput benchmarks: streamed aggregation over the store.

``python benchmarks/bench_analysis.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_analysis.json`` with three measurements:

* ``aggregate_stream``  — group-by aggregation throughput (rows/sec)
  streamed straight from SQLite via ``ResultStore.iter_rows`` (no
  canonical-JSON parsing). The acceptance bar is >= 50k rows/s on a
  100k-row store (the full scale);
* ``bootstrap_groups``  — per-group seeded-bootstrap cost included, i.e.
  the full ``repro analyze aggregate`` path;
* ``compare_paired``    — paired two-arm comparison over the same store.

``pytest benchmarks/bench_analysis.py --benchmark-only -o python_files='bench_*.py'``
runs the same measurements under pytest-benchmark and asserts the bar.
"""

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import aggregate, compare
from repro.core.faults import FaultConfig
from repro.runner import RunReport, Scenario
from repro.store import ResultStore

SCHEMA = "repro.bench_analysis/1"

#: >= this many rows/s of streamed aggregation on the full-scale store
AGGREGATE_BAR_ROWS_PER_SEC = 50_000.0

_SCALES = {
    "smoke": {"rows": 20_000},
    "full": {"rows": 100_000},
}

_ALGORITHMS = ("decay", "fastbc", "rlnc_decay", "robust_fastbc")
_SIZES = (32, 48, 64, 96)


def build_store(path, rows):
    """A store of ``rows`` distinct-keyed fabricated reports.

    Fabricated (not simulated) so the benchmark times the analysis
    layer, not the simulator; the key grid spans algorithms x sizes x
    seeds like a real E-series sweep.
    """
    store = ResultStore(path)
    per_cell = rows // (len(_ALGORITHMS) * len(_SIZES))
    reports = []
    written = 0
    for algorithm in _ALGORITHMS:
        for n in _SIZES:
            scenario = Scenario(
                algorithm=algorithm,
                topology="path",
                topology_params={"n": n},
                params={"k": 4} if algorithm.startswith("rlnc") else {},
                faults=FaultConfig.receiver(0.3),
                seed=0,
            )
            for seed in range(per_cell):
                cell = scenario.with_(seed=seed)
                rounds = 40 + (n * 3) + (seed * 7919) % 97
                reports.append(
                    RunReport(
                        scenario=cell.describe(),
                        algorithm=algorithm,
                        success=(seed % 50) != 0,
                        rounds=rounds,
                        informed=n,
                        total=n,
                        counters={"rounds": rounds},
                        network_n=n,
                        network_name=f"path-{n}",
                        wall_time_s=0.01,
                        cache_key=cell.cache_key(),
                    )
                )
                if len(reports) >= 5000:
                    written += store.put_many(reports)
                    reports = []
    written += store.put_many(reports)
    return store, written


def bench_aggregate_stream(store, rows):
    start = time.perf_counter()
    report = aggregate(
        store, by=("algorithm", "n"), metric="rounds", resamples=200
    )
    elapsed = time.perf_counter() - start
    assert report.summary["rows_scanned"] == rows
    return {
        "name": "aggregate_stream",
        "rows": rows,
        "groups": report.summary["groups"],
        "seconds": round(elapsed, 6),
        "rows_per_sec": round(rows / elapsed, 2),
    }


def bench_bootstrap_groups(store, rows):
    start = time.perf_counter()
    report = aggregate(
        store,
        by=("algorithm", "n", "fault_p"),
        metric="rounds",
        resamples=2000,
    )
    elapsed = time.perf_counter() - start
    return {
        "name": "bootstrap_groups",
        "rows": rows,
        "groups": report.summary["groups"],
        "resamples": 2000,
        "seconds": round(elapsed, 6),
        "rows_per_sec": round(rows / elapsed, 2),
    }


def bench_compare_paired(store, rows):
    start = time.perf_counter()
    report = compare(
        store,
        arm_a={"algorithm": "decay"},
        arm_b={"algorithm": "fastbc"},
        match_on=("n", "seed"),
        resamples=1000,
    )
    elapsed = time.perf_counter() - start
    return {
        "name": "compare_paired",
        "rows": rows,
        "pairs": report.summary["pairs"],
        "seconds": round(elapsed, 6),
        "rows_per_sec": round(rows / elapsed, 2),
    }


def run_analysis_benchmarks(scale="smoke"):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    rows = _SCALES[scale]["rows"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-analysis-") as tmp_dir:
        store, written = build_store(str(Path(tmp_dir) / "bench.db"), rows)
        with store:
            results = [
                bench_aggregate_stream(store, written),
                bench_bootstrap_groups(store, written),
                bench_compare_paired(store, written),
            ]
    return {
        "schema": SCHEMA,
        "scale": scale,
        "store_rows": written,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "results": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_analysis.json")
    args = parser.parse_args(argv)

    report = run_analysis_benchmarks(scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for result in report["results"]:
        print(f"{result['name']:<18} {result['rows_per_sec']:>12.2f} rows/s")
    streamed = report["results"][0]["rows_per_sec"]
    if streamed < AGGREGATE_BAR_ROWS_PER_SEC:
        print(
            f"FAIL: streamed aggregation {streamed} rows/s is below the "
            f"{AGGREGATE_BAR_ROWS_PER_SEC:.0f} rows/s bar"
        )
        return 1
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark wrappers ----------------------------------------------


def test_aggregate_stream_throughput(benchmark, repro_scale, tmp_path):
    rows = _SCALES[repro_scale]["rows"]
    store, written = build_store(str(tmp_path / "bench.db"), rows)
    with store:
        result = benchmark.pedantic(
            lambda: bench_aggregate_stream(store, written),
            rounds=1,
            iterations=1,
        )
    benchmark.extra_info["result"] = result
    # the ISSUE-5 acceptance bar: >= 50k rows/s streamed from SQLite
    assert result["rows_per_sec"] >= AGGREGATE_BAR_ROWS_PER_SEC


def test_compare_throughput(benchmark, repro_scale, tmp_path):
    rows = _SCALES[repro_scale]["rows"]
    store, written = build_store(str(tmp_path / "bench.db"), rows)
    with store:
        result = benchmark.pedantic(
            lambda: bench_compare_paired(store, written),
            rounds=1,
            iterations=1,
        )
    benchmark.extra_info["result"] = result
    assert result["pairs"] > 0


if __name__ == "__main__":
    sys.exit(main())
