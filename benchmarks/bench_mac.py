"""Contention-MAC kernel benchmark: vectorized slots must beat scalar.

``python benchmarks/bench_mac.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_mac.json`` with three measurements:

* ``mac_kernel`` — saturated ContentionChannel slots timed through the
  vectorized ``transmit`` and the scalar ``transmit_reference`` on a
  dense (complete) and a sparse (G(n, p)) collision domain, reported as
  node-slots/s with the vectorized/scalar speedup. Outcome parity
  (byte-identical counters) is asserted before any timing, so the two
  legs provably run the same simulation.
* ``bianchi_agreement`` — measured saturation collision probability and
  throughput against the :mod:`repro.mac.analytic` fixed point, with
  relative errors (the functional test enforces the 5% bar; the bench
  records the actual numbers for PERFORMANCE.md).
* the gate: vectorized must not be slower than scalar on the dense
  domain (exit 1 otherwise).

``pytest benchmarks/bench_mac.py --benchmark-only
-o python_files='bench_*.py'`` runs the same measurement under
pytest-benchmark.
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.core.packets import MessagePacket
from repro.mac import MacConfig, ContentionChannel, bianchi_fixed_point
from repro.mac.saturation import saturation_sim
from repro.telemetry.metrics import METRICS
from repro.topologies import random_graphs
from repro.topologies.basic import complete

SCHEMA = "repro.bench_mac/1"

#: vectorized must at least match the scalar reference on the dense domain
SPEEDUP_BAR = 1.0

_SCALES = {
    "smoke": {"slots": 400, "repeats": 5, "dense_n": 256, "sparse_n": 1024},
    "full": {"slots": 1500, "repeats": 9, "dense_n": 512, "sparse_n": 4096},
}

_CONFIG = MacConfig(cw_min=8, cw_max=64)


def _saturated_actions(network):
    packet = MessagePacket(0)
    return {v: packet for v in network.nodes()}


def _leg_run(network, actions, slots, kernel, seed=7):
    channel = ContentionChannel(
        network, rng=seed, kernel="vectorized", config=_CONFIG
    )
    step = channel.transmit if kernel == "vectorized" else (
        channel.transmit_reference
    )
    for _ in range(slots):
        step(actions)
    return channel


def _time_leg(network, actions, slots, kernel):
    start = time.perf_counter()
    _leg_run(network, actions, slots, kernel)
    return time.perf_counter() - start


def bench_mac_kernel(slots, repeats, dense_n, sparse_n, seed=7):
    """Best-of-``repeats`` node-slots/s for both kernels on both domains."""
    domains = {
        "dense": complete(dense_n),
        "sparse": random_graphs.gnp(sparse_n, 8.0 / sparse_n, rng=seed),
    }
    was_enabled = METRICS.enabled
    METRICS.enabled = False
    results = {}
    try:
        for name, network in domains.items():
            actions = _saturated_actions(network)
            # outcome parity before timing: both kernels must simulate
            # the exact same slots or the speedup compares different work
            vec = _leg_run(network, actions, 24, "vectorized", seed=seed)
            ref = _leg_run(network, actions, 24, "scalar", seed=seed)
            assert vec.counters.as_dict() == ref.counters.as_dict(), (
                f"kernel parity broke on the {name} domain"
            )

            best = {"vectorized": float("inf"), "scalar": float("inf")}
            for _ in range(repeats):
                for kernel in best:
                    best[kernel] = min(
                        best[kernel],
                        _time_leg(network, actions, slots, kernel),
                    )
            node_slots = network.n * slots
            results[name] = {
                "n": network.n,
                "m": network.edge_count,
                "legs": {
                    kernel: {
                        "seconds": round(seconds, 6),
                        "node_slots_per_sec": round(node_slots / seconds, 1),
                    }
                    for kernel, seconds in best.items()
                },
                "speedup": round(
                    best["scalar"] / best["vectorized"], 2
                ),
            }
    finally:
        METRICS.enabled = was_enabled
    return {
        "name": "mac_kernel",
        "slots": slots,
        "repeats": repeats,
        "config": _CONFIG.to_dict(),
        "domains": results,
        "speedup_bar": SPEEDUP_BAR,
    }


def bench_bianchi_agreement(slots=20_000):
    """Measured saturation stats vs the analytic fixed point."""
    rows = []
    for n, cw_min in ((5, 8), (10, 16), (20, 32)):
        config = MacConfig(cw_min=cw_min, cw_max=8 * cw_min)
        predicted = bianchi_fixed_point(n, cw_min=cw_min, cw_max=8 * cw_min)
        measured = saturation_sim(n, config, slots, rng=1)
        rows.append(
            {
                "n": n,
                "cw_min": cw_min,
                "collision_p_model": round(predicted.collision_probability, 5),
                "collision_p_sim": round(measured.collision_probability, 5),
                "collision_p_rel_err": round(
                    abs(
                        measured.collision_probability
                        - predicted.collision_probability
                    )
                    / predicted.collision_probability,
                    5,
                ),
                "throughput_model": round(
                    predicted.slot_throughput(sense=True), 5
                ),
                "throughput_sim": round(measured.throughput, 5),
                "throughput_rel_err": round(
                    abs(
                        measured.throughput
                        - predicted.slot_throughput(sense=True)
                    )
                    / predicted.slot_throughput(sense=True),
                    5,
                ),
            }
        )
    return {"name": "bianchi_agreement", "slots": slots, "rows": rows}


def run_mac_benchmarks(scale="smoke"):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    sizes = _SCALES[scale]
    kernel = bench_mac_kernel(
        sizes["slots"], sizes["repeats"], sizes["dense_n"], sizes["sparse_n"]
    )
    agreement = bench_bianchi_agreement()
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": [kernel, agreement],
    }


def _gate(report):
    """Print the verdicts; return the exit status."""
    kernel = report["results"][0]
    for name, domain in kernel["domains"].items():
        legs = domain["legs"]
        print(
            f"mac_kernel {name:>7} (n={domain['n']}): "
            f"vectorized {legs['vectorized']['node_slots_per_sec']:>12.1f} "
            f"node-slots/s, scalar "
            f"{legs['scalar']['node_slots_per_sec']:>12.1f}, "
            f"speedup {domain['speedup']:.2f}x"
        )
    agreement = report["results"][1]
    for row in agreement["rows"]:
        print(
            f"bianchi n={row['n']:<3} W={row['cw_min']:<3} "
            f"collision_p err {row['collision_p_rel_err'] * 100:.2f}%  "
            f"throughput err {row['throughput_rel_err'] * 100:.2f}%"
        )
    dense = kernel["domains"]["dense"]
    if dense["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: vectorized kernel is {dense['speedup']:.2f}x scalar on "
            f"the dense domain, below the {SPEEDUP_BAR:.1f}x bar"
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_mac.json")
    args = parser.parse_args(argv)

    report = run_mac_benchmarks(scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    status = _gate(report)
    print(f"wrote {args.output}")
    return status


# -- pytest-benchmark wrappers ----------------------------------------------


def test_mac_kernel(benchmark, repro_scale):
    sizes = _SCALES[repro_scale]
    result = benchmark.pedantic(
        lambda: bench_mac_kernel(
            sizes["slots"], sizes["repeats"], sizes["dense_n"],
            sizes["sparse_n"],
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["domains"]["dense"]["speedup"] >= SPEEDUP_BAR


def test_bianchi_agreement(benchmark):
    result = benchmark.pedantic(
        bench_bianchi_agreement, rounds=1, iterations=1
    )
    benchmark.extra_info["result"] = result
    for row in result["rows"]:
        assert row["collision_p_rel_err"] <= 0.05
        assert row["throughput_rel_err"] <= 0.05


if __name__ == "__main__":
    sys.exit(main())
