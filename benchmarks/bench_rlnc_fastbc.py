"""Benchmark E7 (Lemma 13): RLNC-Robust-FASTBC k-message broadcast.

Regenerates the E7 table from DESIGN.md section 4 / EXPERIMENTS.md.
The benchmarked quantity is the wall-clock of one full experiment sweep at
smoke scale; pass ``--repro-scale=full`` (see conftest) to regenerate the
EXPERIMENTS.md scale. The table itself is attached to the benchmark's
``extra_info`` so results stay inspectable in the pytest-benchmark JSON.
"""

from repro.experiments import get_experiment


def test_bench_rlnc_fastbc(benchmark, repro_scale):
    experiment = get_experiment("E7")
    table = benchmark.pedantic(
        lambda: experiment(scale=repro_scale, seed=0), rounds=1, iterations=1
    )
    assert len(table) > 0
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["claim"] = "Lemma 13"
    benchmark.extra_info["table"] = table.to_csv()
