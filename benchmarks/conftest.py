"""Benchmark configuration: the --repro-scale option.

``pytest benchmarks/ --benchmark-only`` runs every experiment at smoke
scale (seconds each). ``--repro-scale=full`` regenerates the
EXPERIMENTS.md-scale tables (minutes total).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="smoke",
        choices=("smoke", "full"),
        help="experiment sweep size for the reproduction benchmarks",
    )


@pytest.fixture
def repro_scale(request):
    return request.config.getoption("--repro-scale")
