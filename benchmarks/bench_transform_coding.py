"""Benchmark E15 (Lemma 26): the coding transformation's (1-p) throughput overhead.

Regenerates the E15 table from DESIGN.md section 4 / EXPERIMENTS.md.
The benchmarked quantity is the wall-clock of one full experiment sweep at
smoke scale; pass ``--repro-scale=full`` (see conftest) to regenerate the
EXPERIMENTS.md scale. The table itself is attached to the benchmark's
``extra_info`` so results stay inspectable in the pytest-benchmark JSON.
"""

from repro.experiments import get_experiment


def test_bench_transform_coding(benchmark, repro_scale):
    experiment = get_experiment("E15")
    table = benchmark.pedantic(
        lambda: experiment(scale=repro_scale, seed=0), rounds=1, iterations=1
    )
    assert len(table) > 0
    benchmark.extra_info["experiment"] = "E15"
    benchmark.extra_info["claim"] = "Lemma 26"
    benchmark.extra_info["table"] = table.to_csv()
