"""Farm throughput benchmarks: scaling, recovery, and journal cost.

``python benchmarks/bench_farm.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_farm.json`` with four measurements over real processes
(one ``repro serve --workers remote`` coordinator, N ``repro worker``
subprocesses):

* ``farm_scaling``   — scenarios/sec for the same sweep at 1 worker vs
  4 workers, with the ISSUE-6 acceptance bar (>= 2.5x, enforced when
  the machine has >= 4 CPUs — worker processes scale with cores);
* ``lease_recovery`` — SIGKILL a worker holding a lease and measure how
  long the farm takes to finish the sweep anyway (the expiry-requeue
  path, dominated by the lease timeout);
* ``journal_overhead`` — the same sweep with and without the durable
  coordinator journal (``--no-journal``), with the ISSUE-7 acceptance
  bar (journaling costs <= 10% of scenarios/s);
* ``coordinator_recovery`` — SIGKILL the *coordinator* mid-sweep,
  restart it with ``--recover`` on the same port, and measure restart-
  to-healthy (``recovery_seconds``) plus kill-to-sweep-done.

``--only NAME[,NAME...]`` runs a subset (bars are only enforced for
measurements that ran).

``pytest benchmarks/bench_farm.py --benchmark-only -o python_files='bench_*.py'``
runs the same measurements under pytest-benchmark.
"""

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.faults import FaultConfig
from repro.farm.smoke import (
    _free_port,
    _kill_leaseholder,
    _spawn_worker,
    _wait_for_health,
)
from repro.runner import Scenario, expand_grid
from repro.service.client import ServiceClient

SCHEMA = "repro.bench_farm/1"

#: the ISSUE-6 acceptance bar: 4 workers >= 2.5x the 1-worker throughput
SCALING_BAR = 2.5

#: the bar is only meaningful when worker processes can use real cores
MIN_CPUS_FOR_BAR = 4

_SCALES = {
    "smoke": {"scenarios": 64, "n": 48, "chunk": 4},
    "full": {"scenarios": 240, "n": 64, "chunk": 8},
}

#: recovery measurement: small sweep, short leases, a double-size victim
RECOVERY = {"scenarios": 40, "n": 32, "chunk": 4, "lease_timeout": 2.0,
            "victim_chunk": 12}

#: the ISSUE-7 acceptance bar: journaling costs <= 10% of scenarios/s
JOURNAL_OVERHEAD_BAR = 0.10


def _sweep(count, n):
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": n},
        faults=FaultConfig.receiver(0.3),
    )
    return expand_grid(base, seeds=range(count))


def _start_coordinator(store_path, chunk, lease_timeout=30.0, port=None,
                       extra=()):
    port = _free_port() if port is None else port
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", store_path, "--port", str(port),
            "--workers", "remote",
            "--lease-scenarios", str(chunk),
            "--lease-timeout", str(lease_timeout),
            *extra,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
    _wait_for_health(client)
    return server, client


def _wait_registered(client, count, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while len(client.workers()["workers"]) < count:
        assert time.monotonic() < deadline, "workers never registered"
        time.sleep(0.02)


def _stop_all(server, workers):
    for process in workers:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
    for process in workers:
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            process.kill()
    server.terminate()
    try:
        server.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        server.kill()


def _timed_farm_run(tmp_dir, tag, worker_count, scenarios, chunk, extra=()):
    """Seconds for ``worker_count`` workers to drain ``scenarios``.

    Workers register *before* the clock starts, so subprocess startup
    is excluded and the measurement is pure sweep throughput.
    """
    store_path = str(Path(tmp_dir) / tag)
    server, client = _start_coordinator(store_path, chunk, extra=extra)
    url = client.base_url
    workers = [
        _spawn_worker(url, f"{tag}-w{i}", until_idle=False)
        for i in range(worker_count)
    ]
    try:
        _wait_registered(client, worker_count)
        start = time.perf_counter()
        job = client.submit(scenarios=scenarios)
        client.wait(job["id"], timeout=600.0, poll=0.05)
        elapsed = time.perf_counter() - start
        snapshot = client.workers()
    finally:
        _stop_all(server, workers)
    queue = snapshot["queue"]
    assert queue["scenarios_completed"] == len(scenarios), queue
    return elapsed


def bench_farm_scaling(tmp_dir, scenario_count, n, chunk):
    scenarios = _sweep(scenario_count, n)
    runs = {}
    for count in (1, 4):
        elapsed = _timed_farm_run(
            tmp_dir, f"scaling-{count}", count, scenarios, chunk
        )
        runs[str(count)] = {
            "seconds": round(elapsed, 6),
            "scenarios_per_sec": round(scenario_count / elapsed, 2),
        }
    speedup = runs["4"]["scenarios_per_sec"] / runs["1"]["scenarios_per_sec"]
    return {
        "name": "farm_scaling",
        "scenarios": scenario_count,
        "lease_scenarios": chunk,
        "workers": runs,
        "speedup": round(speedup, 2),
        "cpu_count": os.cpu_count(),
    }


def bench_lease_recovery(tmp_dir):
    """SIGKILL a leaseholder; seconds from the kill to sweep completion."""
    sizes = RECOVERY
    scenarios = _sweep(sizes["scenarios"], sizes["n"])
    store_path = str(Path(tmp_dir) / "recovery")
    server, client = _start_coordinator(
        store_path, sizes["chunk"], lease_timeout=sizes["lease_timeout"]
    )
    url = client.base_url
    workers = {}
    try:
        job = client.submit(scenarios=scenarios)
        # the victim takes triple-size leases so the kill lands mid-lease
        workers["victim"] = _spawn_worker(
            url, "victim", sizes["victim_chunk"]
        )
        workers["survivor"] = _spawn_worker(url, "survivor")
        killed = _kill_leaseholder(client, workers)
        start = time.perf_counter()
        client.wait(job["id"], timeout=300.0, poll=0.02)
        recovery = time.perf_counter() - start
        snapshot = client.workers()
    finally:
        _stop_all(server, list(workers.values()))
    queue = snapshot["queue"]
    assert queue["leases_expired"] >= 1, queue
    assert queue["scenarios_completed"] == len(scenarios), queue
    return {
        "name": "lease_recovery",
        "scenarios": sizes["scenarios"],
        "killed": killed,
        "lease_timeout_s": sizes["lease_timeout"],
        "recovery_seconds": round(recovery, 6),
        "leases_expired": queue["leases_expired"],
        "duplicates": queue["duplicates"],
    }


def bench_journal_overhead(tmp_dir, scenario_count, n, chunk):
    """The same single-worker sweep with and without the journal.

    Every lease grant, heartbeat, and release writes the coordinator
    journal (``farm_journal`` on shard 0); this prices that durability
    in scenarios/s against ``repro serve --no-journal``.
    """
    scenarios = _sweep(scenario_count, n)
    runs = {}
    for tag, extra in (("without", ("--no-journal",)), ("with", ())):
        elapsed = _timed_farm_run(
            tmp_dir, f"journal-{tag}", 1, scenarios, chunk, extra=extra
        )
        runs[tag] = {
            "seconds": round(elapsed, 6),
            "scenarios_per_sec": round(scenario_count / elapsed, 2),
        }
    overhead = (
        runs["with"]["seconds"] - runs["without"]["seconds"]
    ) / runs["without"]["seconds"]
    return {
        "name": "journal_overhead",
        "scenarios": scenario_count,
        "lease_scenarios": chunk,
        "runs": runs,
        "overhead_fraction": round(max(0.0, overhead), 4),
    }


def bench_coordinator_recovery(tmp_dir):
    """SIGKILL the coordinator mid-sweep; restart it with ``--recover``.

    ``recovery_seconds`` is restart-to-healthy (journal replay plus
    service startup); ``kill_to_done_seconds`` is the full outage cost
    including worker retry backoff and expired-lease requeues.
    """
    sizes = RECOVERY
    scenarios = _sweep(sizes["scenarios"], sizes["n"])
    store_path = str(Path(tmp_dir) / "coordinator-recovery")
    port = _free_port()
    server, client = _start_coordinator(
        store_path, sizes["chunk"], lease_timeout=sizes["lease_timeout"],
        port=port,
    )
    workers = []
    try:
        job = client.submit(scenarios=scenarios)
        workers = [
            _spawn_worker(client.base_url, f"cr-w{i}", until_idle=False)
            for i in range(2)
        ]
        # let the sweep get properly underway before pulling the plug
        deadline = time.monotonic() + 120.0
        while client.job(job["id"])["completed"] < sizes["scenarios"] // 4:
            assert time.monotonic() < deadline, "sweep never progressed"
            time.sleep(0.02)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=10.0)
        killed_at = time.perf_counter()
        server, client = _start_coordinator(
            store_path, sizes["chunk"], lease_timeout=sizes["lease_timeout"],
            port=port, extra=("--recover",),
        )
        recovery = time.perf_counter() - killed_at
        snapshot = client.workers()
        recovered = snapshot.get("recovered") or {}
        assert recovered.get("jobs", 0) >= 1, recovered
        client.wait(job["id"], timeout=300.0, poll=0.02)
        kill_to_done = time.perf_counter() - killed_at
        completed = client.job(job["id"])["completed"]
    finally:
        _stop_all(server, workers)
    assert completed == len(scenarios), completed
    return {
        "name": "coordinator_recovery",
        "scenarios": sizes["scenarios"],
        "lease_timeout_s": sizes["lease_timeout"],
        "recovery_seconds": round(recovery, 6),
        "kill_to_done_seconds": round(kill_to_done, 6),
        "recovered_jobs": recovered.get("jobs", 0),
        "recovered_leases": recovered.get("leases", 0),
    }


_BENCHES = ("farm_scaling", "lease_recovery", "journal_overhead",
            "coordinator_recovery")


def run_farm_benchmarks(scale="smoke", only=None):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    selected = tuple(only) if only else _BENCHES
    unknown = set(selected) - set(_BENCHES)
    if unknown:
        raise ValueError(f"unknown benchmarks: {sorted(unknown)}")
    sizes = _SCALES[scale]
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-farm-") as tmp_dir:
        if "farm_scaling" in selected:
            results.append(bench_farm_scaling(
                tmp_dir, sizes["scenarios"], sizes["n"], sizes["chunk"]
            ))
        if "lease_recovery" in selected:
            results.append(bench_lease_recovery(tmp_dir))
        if "journal_overhead" in selected:
            results.append(bench_journal_overhead(
                tmp_dir, sizes["scenarios"], sizes["n"], sizes["chunk"]
            ))
        if "coordinator_recovery" in selected:
            results.append(bench_coordinator_recovery(tmp_dir))
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_farm.json")
    parser.add_argument(
        "--only", default=None, metavar="NAME[,NAME...]",
        help=f"run a subset of {', '.join(_BENCHES)}",
    )
    args = parser.parse_args(argv)

    only = args.only.split(",") if args.only else None
    report = run_farm_benchmarks(scale=args.scale, only=only)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    by_name = {result["name"]: result for result in report["results"]}
    scaling = by_name.get("farm_scaling")
    if scaling:
        for count in ("1", "4"):
            run = scaling["workers"][count]
            print(
                f"farm_scaling         {count} worker(s): "
                f"{run['scenarios_per_sec']:>8.2f} scenarios/s "
                f"({run['seconds']:.3f}s)"
            )
        print(f"farm_scaling         speedup {scaling['speedup']}x at 4 workers")
    recovery = by_name.get("lease_recovery")
    if recovery:
        print(
            f"lease_recovery       {recovery['recovery_seconds']:.3f}s from "
            f"kill to done ({recovery['lease_timeout_s']}s lease timeout, "
            f"{recovery['leases_expired']} expired)"
        )
    journal = by_name.get("journal_overhead")
    if journal:
        print(
            f"journal_overhead     "
            f"{journal['runs']['with']['scenarios_per_sec']:.2f} scenarios/s "
            f"journaled vs "
            f"{journal['runs']['without']['scenarios_per_sec']:.2f} without "
            f"({journal['overhead_fraction'] * 100:.1f}% overhead)"
        )
    coordinator = by_name.get("coordinator_recovery")
    if coordinator:
        print(
            f"coordinator_recovery {coordinator['recovery_seconds']:.3f}s "
            f"restart-to-healthy, {coordinator['kill_to_done_seconds']:.3f}s "
            f"kill-to-done ({coordinator['recovered_jobs']} job(s), "
            f"{coordinator['recovered_leases']} lease(s) replayed)"
        )
    print(f"wrote {args.output}")

    failed = False
    cpus = os.cpu_count() or 1
    if scaling and scaling["speedup"] < SCALING_BAR:
        if cpus >= MIN_CPUS_FOR_BAR:
            print(
                f"FAIL: {scaling['speedup']}x at 4 workers is below the "
                f"{SCALING_BAR}x bar"
            )
            failed = True
        else:
            print(
                f"NOTE: {scaling['speedup']}x at 4 workers on {cpus} CPU(s); "
                f"the {SCALING_BAR}x bar needs >= {MIN_CPUS_FOR_BAR} cores"
            )
    if journal and journal["overhead_fraction"] > JOURNAL_OVERHEAD_BAR:
        print(
            f"FAIL: journal overhead "
            f"{journal['overhead_fraction'] * 100:.1f}% is above the "
            f"{JOURNAL_OVERHEAD_BAR * 100:.0f}% bar"
        )
        failed = True
    return 1 if failed else 0


# -- pytest-benchmark wrappers ----------------------------------------------


def test_farm_scaling(benchmark, repro_scale, tmp_path):
    sizes = _SCALES[repro_scale]
    result = benchmark.pedantic(
        lambda: bench_farm_scaling(
            str(tmp_path), sizes["scenarios"], sizes["n"], sizes["chunk"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["workers"]["1"]["scenarios_per_sec"] > 0
    if (os.cpu_count() or 1) >= MIN_CPUS_FOR_BAR:
        # the ISSUE-6 acceptance bar, on hardware that can express it
        assert result["speedup"] >= SCALING_BAR


def test_lease_recovery(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: bench_lease_recovery(str(tmp_path)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["leases_expired"] >= 1
    assert result["duplicates"] == 0
    # recovery is bounded by the lease timeout plus the redone chunk
    assert result["recovery_seconds"] < result["lease_timeout_s"] + 60.0


def test_journal_overhead(benchmark, repro_scale, tmp_path):
    sizes = _SCALES[repro_scale]
    result = benchmark.pedantic(
        lambda: bench_journal_overhead(
            str(tmp_path), sizes["scenarios"], sizes["n"], sizes["chunk"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    # the ISSUE-7 acceptance bar: durability costs <= 10% throughput
    assert result["overhead_fraction"] <= JOURNAL_OVERHEAD_BAR


def test_coordinator_recovery(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: bench_coordinator_recovery(str(tmp_path)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["recovered_jobs"] >= 1
    assert result["recovery_seconds"] < 30.0


if __name__ == "__main__":
    sys.exit(main())
