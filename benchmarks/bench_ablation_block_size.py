"""Benchmark A1 (ablation): Robust FASTBC's block size S = Theta(log log n) design choice.

Regenerates the A1 table from DESIGN.md section 4 / EXPERIMENTS.md.
The benchmarked quantity is the wall-clock of one full experiment sweep at
smoke scale; pass ``--repro-scale=full`` (see conftest) to regenerate the
EXPERIMENTS.md scale. The table itself is attached to the benchmark's
``extra_info`` so results stay inspectable in the pytest-benchmark JSON.
"""

from repro.experiments import get_experiment


def test_bench_ablation_block_size(benchmark, repro_scale):
    experiment = get_experiment("A1")
    table = benchmark.pedantic(
        lambda: experiment(scale=repro_scale, seed=0), rounds=1, iterations=1
    )
    assert len(table) > 0
    benchmark.extra_info["experiment"] = "A1"
    benchmark.extra_info["claim"] = "ablation"
    benchmark.extra_info["table"] = table.to_csv()
