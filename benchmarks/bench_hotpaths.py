"""Hot-path microbenchmarks: vectorized substrate vs scalar references.

``pytest benchmarks/bench_hotpaths.py --benchmark-only -o python_files='bench_*.py'``
times each hot path through pytest-benchmark; every test also asserts the
vectorized kernel beats its reference, and the star round-loop test
asserts the ISSUE-2 acceptance bar (>= 5x). ``repro bench`` is the
CLI equivalent that writes ``BENCH_hotpaths.json``.
"""

import pytest

from repro.perf.hotpaths import (
    _SCALES,
    bench_channel_rounds,
    bench_gf_matmul,
    bench_rlnc_emit,
    bench_rlnc_receive,
    bench_star_rlnc_round_loop,
    consistency_check,
)


def test_kernels_match_references():
    assert consistency_check() == []


def test_bench_channel_rounds(benchmark, repro_scale):
    result = benchmark.pedantic(
        lambda: bench_channel_rounds(_SCALES[repro_scale]["channel_rounds"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result.to_dict()
    assert result.speedup > 1.0


def test_bench_star_rlnc_round_loop(benchmark, repro_scale):
    result = benchmark.pedantic(
        lambda: bench_star_rlnc_round_loop(_SCALES[repro_scale]["star_rounds"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result.to_dict()
    # the ISSUE-2 acceptance bar for the 1000-node star RLNC round loop
    assert result.speedup >= 5.0


def test_bench_rlnc_emit(benchmark, repro_scale):
    result = benchmark.pedantic(
        lambda: bench_rlnc_emit(_SCALES[repro_scale]["rlnc_ops"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result.to_dict()
    assert result.speedup > 1.0


def test_bench_rlnc_receive(benchmark, repro_scale):
    result = benchmark.pedantic(
        lambda: bench_rlnc_receive(_SCALES[repro_scale]["rlnc_ops"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result.to_dict()
    assert result.speedup > 1.0


def test_bench_gf_matmul(benchmark, repro_scale):
    result = benchmark.pedantic(
        lambda: bench_gf_matmul(_SCALES[repro_scale]["matmuls"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result.to_dict()
    assert result.ops_per_sec > 0
