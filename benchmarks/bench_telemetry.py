"""Telemetry overhead benchmark: the zero-cost-when-off guarantee.

``python benchmarks/bench_telemetry.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_telemetry.json`` with the channel-round workload from
``bench_hotpaths`` timed three ways:

* ``bare``     — a ``Channel`` subclass whose round epilogue predates the
  instrumentation (no ``METRICS.enabled`` read at all), the honest
  uninstrumented baseline;
* ``disabled`` — the shipped ``Channel`` with the global registry off,
  i.e. what every user who never asks for telemetry pays;
* ``enabled``  — the shipped ``Channel`` with the registry on, counters
  incrementing every round.

Two acceptance bars are enforced (exit 1 on violation):

* disabled overhead <= 1% of the bare baseline (the tentpole bar);
* enabled overhead <= 5%.

A third check asserts the observability invariant the bars exist to
protect: canonical report bytes from ``run_batch`` are **identical**
with telemetry + tracing fully on vs fully off.

The three legs are timed interleaved (best-of-N per leg, round-robin)
so drift in machine load lands on every leg equally rather than biasing
whichever leg ran last.

``pytest benchmarks/bench_telemetry.py --benchmark-only
-o python_files='bench_*.py'`` runs the same measurement under
pytest-benchmark.
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.core.engine import Channel, RoundResult
from repro.core.errors import SimulationError
from repro.core.faults import FaultConfig
from repro.core.packets import MessagePacket
from repro.runner import Scenario, expand_grid, run_batch
from repro.telemetry.metrics import METRICS
from repro.telemetry.tracing import TRACER, TraceSink
from repro.topologies import random_graphs
from repro.util.rng import RandomSource

SCHEMA = "repro.bench_telemetry/1"

#: the tentpole acceptance bar: telemetry off costs <= 1% on channel rounds
DISABLED_OVERHEAD_BAR = 0.01

#: counters incrementing every round may cost <= 5%
ENABLED_OVERHEAD_BAR = 0.05

_SCALES = {
    "smoke": {"rounds": 600, "repeats": 9, "n": 1024},
    "full": {"rounds": 2000, "repeats": 15, "n": 1024},
}

#: the byte-identity sweep: small but multi-seed, the store-canonical path
_IDENTITY_SCENARIOS = 8


class _BareChannel(Channel):
    """``Channel`` with the pre-telemetry round epilogue.

    ``_run_round`` below is the shipped body minus the ``if
    _METRICS.enabled:`` block — the baseline the <=1% disabled bar is
    measured against. If ``Channel._run_round`` changes shape, this
    override must be updated to match (the consistency assertion in
    :func:`bench_channel_overhead` catches behavioural drift).
    """

    def _run_round(self, actions, resolver):
        n = self.network.n
        for b in actions:
            if not isinstance(b, int) or not 0 <= b < n:
                raise SimulationError(
                    f"broadcast action for invalid node {b!r} (n={n})"
                )
        result = RoundResult(round_index=self.round_index)
        self.counters.rounds += 1
        self.counters.broadcasts += len(actions)
        if actions:
            resolver(actions, result)
        self.round_index += 1
        return result


def _workload(rounds, n, seed=7):
    """The bench_hotpaths channel workload: sparse G(n, p), n/8 senders."""
    network = random_graphs.gnp(n, 16.0 / n, rng=seed)
    pick = RandomSource(seed)
    packet = MessagePacket(0)
    action_sets = [
        {v: packet for v in pick.sample(range(network.n), network.n // 8)}
        for _ in range(rounds)
    ]
    return network, action_sets


def _leg_run(channel_cls, network, action_sets, seed=7):
    """One timed pass: fresh channel, every round transmitted."""
    channel = channel_cls(network, FaultConfig.receiver(0.1), rng=seed)
    for actions in action_sets:
        channel.transmit(actions)
    return channel


def _time_leg(channel_cls, network, action_sets):
    start = time.perf_counter()
    _leg_run(channel_cls, network, action_sets)
    return time.perf_counter() - start


def bench_channel_overhead(rounds, repeats, n, seed=7):
    """Best-of-``repeats`` seconds for bare / disabled / enabled legs."""
    network, action_sets = _workload(rounds, n, seed=seed)

    # behavioural sanity first: the bare override must produce the exact
    # same deliveries and counters as the shipped channel, or the
    # baseline is measuring a different simulation
    bare = _leg_run(_BareChannel, network, action_sets[:16], seed=seed)
    shipped = _leg_run(Channel, network, action_sets[:16], seed=seed)
    assert bare.counters.as_dict() == shipped.counters.as_dict(), (
        "_BareChannel diverged from Channel; update its _run_round copy"
    )

    was_enabled = METRICS.enabled
    best = {"bare": float("inf"), "disabled": float("inf"),
            "enabled": float("inf")}
    try:
        for _ in range(repeats):
            METRICS.enabled = False
            best["bare"] = min(
                best["bare"], _time_leg(_BareChannel, network, action_sets)
            )
            best["disabled"] = min(
                best["disabled"], _time_leg(Channel, network, action_sets)
            )
            METRICS.enabled = True
            best["enabled"] = min(
                best["enabled"], _time_leg(Channel, network, action_sets)
            )
    finally:
        METRICS.enabled = was_enabled

    def leg(name):
        seconds = best[name]
        overhead = (seconds - best["bare"]) / best["bare"]
        return {
            "seconds": round(seconds, 6),
            "rounds_per_sec": round(rounds / seconds, 2),
            "overhead_fraction": round(max(0.0, overhead), 4),
        }

    return {
        "name": "channel_round_overhead",
        "rounds": rounds,
        "repeats": repeats,
        "n": network.n,
        "m": network.edge_count,
        "broadcasters": network.n // 8,
        "legs": {name: leg(name) for name in ("bare", "disabled", "enabled")},
        "bars": {
            "disabled": DISABLED_OVERHEAD_BAR,
            "enabled": ENABLED_OVERHEAD_BAR,
        },
    }


def _identity_sweep():
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 32},
        faults=FaultConfig.receiver(0.3),
    )
    return expand_grid(base, seeds=range(_IDENTITY_SCENARIOS))


def check_byte_identity(tmp_dir):
    """Canonical report bytes with telemetry+tracing on vs off.

    Returns the evidence dict; raises AssertionError on any byte
    difference (the invariant the whole subsystem is built around).
    """
    scenarios = _identity_sweep()
    was_enabled = METRICS.enabled
    previous_sink = TRACER.sink
    trace_path = str(Path(tmp_dir) / "bench-identity.jsonl")
    try:
        METRICS.enabled = False
        TRACER.configure(None)
        off = [report.to_json(canonical=True) for report in run_batch(scenarios)]

        METRICS.enabled = True
        TRACER.configure(TraceSink(trace_path, rate=1.0))
        on = [report.to_json(canonical=True) for report in run_batch(scenarios)]
        spans_written = TRACER.sink.written
    finally:
        METRICS.enabled = was_enabled
        TRACER.configure(previous_sink)

    for scenario, bytes_off, bytes_on in zip(scenarios, off, on):
        assert bytes_off == bytes_on, (
            f"telemetry leaked into canonical report bytes for "
            f"{scenario.cache_key()}"
        )
    return {
        "name": "byte_identity",
        "scenarios": len(scenarios),
        "identical": True,
        "spans_written": spans_written,
    }


def run_telemetry_benchmarks(scale="smoke"):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    sizes = _SCALES[scale]
    overhead = bench_channel_overhead(
        sizes["rounds"], sizes["repeats"], sizes["n"]
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-telemetry-") as tmp:
        identity = check_byte_identity(tmp)
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": [overhead, identity],
    }


def _gate(report):
    """Print the verdicts; return the exit status."""
    overhead = report["results"][0]
    legs = overhead["legs"]
    for name in ("bare", "disabled", "enabled"):
        leg = legs[name]
        print(
            f"channel_rounds {name:>8}: {leg['rounds_per_sec']:>10.2f} "
            f"rounds/s ({leg['overhead_fraction'] * 100:.2f}% overhead)"
        )
    identity = report["results"][1]
    print(
        f"byte_identity: {identity['scenarios']} scenarios identical with "
        f"telemetry on/off ({identity['spans_written']} spans written)"
    )
    failed = False
    if legs["disabled"]["overhead_fraction"] > DISABLED_OVERHEAD_BAR:
        print(
            f"FAIL: disabled telemetry costs "
            f"{legs['disabled']['overhead_fraction'] * 100:.2f}%, above the "
            f"{DISABLED_OVERHEAD_BAR * 100:.0f}% bar"
        )
        failed = True
    if legs["enabled"]["overhead_fraction"] > ENABLED_OVERHEAD_BAR:
        print(
            f"FAIL: enabled telemetry costs "
            f"{legs['enabled']['overhead_fraction'] * 100:.2f}%, above the "
            f"{ENABLED_OVERHEAD_BAR * 100:.0f}% bar"
        )
        failed = True
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_telemetry.json")
    args = parser.parse_args(argv)

    report = run_telemetry_benchmarks(scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    status = _gate(report)
    print(f"wrote {args.output}")
    return status


# -- pytest-benchmark wrappers ----------------------------------------------


def test_telemetry_overhead(benchmark, repro_scale):
    sizes = _SCALES[repro_scale]
    result = benchmark.pedantic(
        lambda: bench_channel_overhead(
            sizes["rounds"], sizes["repeats"], sizes["n"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    legs = result["legs"]
    assert legs["disabled"]["overhead_fraction"] <= DISABLED_OVERHEAD_BAR
    assert legs["enabled"]["overhead_fraction"] <= ENABLED_OVERHEAD_BAR


def test_byte_identity(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: check_byte_identity(str(tmp_path)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["identical"]
    assert result["spans_written"] >= 1


if __name__ == "__main__":
    sys.exit(main())
