"""Store throughput benchmarks: inserts, queries, cache-hit speedup.

``python benchmarks/bench_store.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_store.json`` with three measurements:

* ``store_insert``     — batched ``put_many`` throughput (reports/sec);
* ``store_query``      — filtered ``query`` throughput (queries/sec);
* ``cache_hit_sweep``  — a repeated 100-scenario sweep served from the
  store vs. recomputed, with the ISSUE-4 acceptance bar (>= 10x).

``pytest benchmarks/bench_store.py --benchmark-only -o python_files='bench_*.py'``
runs the same measurements under pytest-benchmark and asserts the bar.
"""

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.core.faults import FaultConfig
from repro.runner import RunReport, Scenario, expand_grid, run_batch
from repro.store import ResultStore

SCHEMA = "repro.bench_store/1"

_SCALES = {
    "smoke": {"inserts": 2000, "queries": 200, "sweep_seeds": 100},
    "full": {"inserts": 20000, "queries": 2000, "sweep_seeds": 100},
}

#: the repeated sweep: 100 scenarios of the paper's Decay under receiver
#: noise — each run costs real simulation time, a cache hit one SQLite read
SWEEP_BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 64},
    faults=FaultConfig.receiver(0.3),
    seed=0,
)


def _fabricated_reports(count):
    """Distinct-keyed reports without paying simulation time (insert bench)."""
    reports = []
    for seed in range(count):
        scenario = SWEEP_BASE.with_(seed=seed)
        reports.append(
            RunReport(
                scenario=scenario.describe(),
                algorithm=scenario.algorithm,
                success=True,
                rounds=120,
                informed=64,
                total=64,
                counters={"rounds": 120},
                network_n=64,
                network_name="path-64",
                wall_time_s=0.01,
                cache_key=scenario.cache_key(),
            )
        )
    return reports


def bench_insert(tmp_dir, count):
    reports = _fabricated_reports(count)
    with ResultStore(str(Path(tmp_dir) / "insert.db")) as store:
        start = time.perf_counter()
        written = store.put_many(reports)
        elapsed = time.perf_counter() - start
    assert written == count
    return {
        "name": "store_insert",
        "reports": count,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(count / elapsed, 2),
    }


def bench_query(tmp_dir, count):
    with ResultStore(str(Path(tmp_dir) / "query.db")) as store:
        store.put_many(_fabricated_reports(1000))
        start = time.perf_counter()
        for index in range(count):
            reports = store.query(
                algorithm="decay", seed_min=index % 900, seed_max=index % 900 + 50
            )
            assert reports
        elapsed = time.perf_counter() - start
    return {
        "name": "store_query",
        "queries": count,
        "rows_per_query": 51,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(count / elapsed, 2),
    }


def bench_cache_hit_sweep(tmp_dir, seeds):
    scenarios = expand_grid(SWEEP_BASE, seeds=range(seeds))
    with ResultStore(str(Path(tmp_dir) / "sweep.db")) as store:
        start = time.perf_counter()
        cold = run_batch(scenarios, store=store)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_batch(scenarios, store=store)
        warm_s = time.perf_counter() - start
    assert [w.to_json(canonical=True) for w in warm] == [
        c.to_json(canonical=True) for c in cold
    ]
    return {
        "name": "cache_hit_sweep",
        "scenarios": len(scenarios),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2),
    }


def run_store_benchmarks(scale="smoke"):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    sizes = _SCALES[scale]
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp_dir:
        results = [
            bench_insert(tmp_dir, sizes["inserts"]),
            bench_query(tmp_dir, sizes["queries"]),
            bench_cache_hit_sweep(tmp_dir, sizes["sweep_seeds"]),
        ]
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "results": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_store.json")
    args = parser.parse_args(argv)

    report = run_store_benchmarks(scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for result in report["results"]:
        if "ops_per_sec" in result:
            print(f"{result['name']:<18} {result['ops_per_sec']:>12.2f} ops/s")
        else:
            print(
                f"{result['name']:<18} {result['speedup']:>11.2f}x "
                f"({result['cold_seconds']:.3f}s cold, "
                f"{result['warm_seconds']:.3f}s warm)"
            )
    speedup = report["results"][-1]["speedup"]
    if speedup < 10.0:
        print(f"FAIL: cache-hit speedup {speedup}x is below the 10x bar")
        return 1
    print(f"wrote {args.output}")
    return 0


# -- pytest-benchmark wrappers ----------------------------------------------


def test_insert_throughput(benchmark, repro_scale, tmp_path):
    result = benchmark.pedantic(
        lambda: bench_insert(str(tmp_path), _SCALES[repro_scale]["inserts"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["ops_per_sec"] > 1000


def test_query_throughput(benchmark, repro_scale, tmp_path):
    result = benchmark.pedantic(
        lambda: bench_query(str(tmp_path), _SCALES[repro_scale]["queries"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    assert result["ops_per_sec"] > 50


def test_cache_hit_speedup(benchmark, repro_scale, tmp_path):
    result = benchmark.pedantic(
        lambda: bench_cache_hit_sweep(
            str(tmp_path), _SCALES[repro_scale]["sweep_seeds"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    # the ISSUE-4 acceptance bar: a fully cached 100-scenario sweep
    # replays at least 10x faster than recomputation
    assert result["speedup"] >= 10.0


if __name__ == "__main__":
    sys.exit(main())
