"""Benchmark X1 (exploration): the dense-wave RLNC candidate for the
paper's open O(D + k log n + polylog n) problem.

Regenerates the X1 table from DESIGN.md section 4 / EXPERIMENTS.md.
"""

from repro.experiments import get_experiment


def test_bench_open_problem(benchmark, repro_scale):
    experiment = get_experiment("X1")
    table = benchmark.pedantic(
        lambda: experiment(scale=repro_scale, seed=0), rounds=1, iterations=1
    )
    assert len(table) > 0
    benchmark.extra_info["experiment"] = "X1"
    benchmark.extra_info["table"] = table.to_csv()
