"""Micro-benchmarks of the library's substrates.

These time the hot paths every experiment leans on: GF(2^8) matrix
multiplication, Reed-Solomon encode/decode, RLNC decoding, and the radio
channel's round resolution. Useful for catching performance regressions
in the simulation core (the experiments above dominate everything else).
"""

import numpy as np

from repro.coding.gf256 import GF256
from repro.coding.matrix import GFMatrix
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.rlnc import RLNCDecoder, RLNCEncoder
from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.packets import MessagePacket
from repro.topologies.basic import star
from repro.util.rng import RandomSource


def test_gf256_matmul_64(benchmark):
    rng = RandomSource(1)
    a = rng.bytes_array(64 * 64).reshape(64, 64)
    b = rng.bytes_array(64 * 64).reshape(64, 64)
    result = benchmark(GF256.matmul, a, b)
    assert result.shape == (64, 64)


def test_gfmatrix_rref_64(benchmark):
    rng = RandomSource(2)
    m = GFMatrix(rng.bytes_array(64 * 64).reshape(64, 64))
    reduced, pivots = benchmark(m.rref)
    assert len(pivots) <= 64


def test_reed_solomon_encode_k32_m128(benchmark):
    rng = RandomSource(3)
    code = ReedSolomonCode(k=32, m=128)
    message = rng.bytes_array(32 * 64).reshape(32, 64)
    coded = benchmark(code.encode_array, message)
    assert coded.shape == (128, 64)


def test_reed_solomon_decode_k32(benchmark):
    rng = RandomSource(4)
    code = ReedSolomonCode(k=32, m=128)
    message = rng.bytes_array(32 * 64).reshape(32, 64)
    coded = code.encode_array(message)
    indices = list(range(64, 96))

    def decode():
        return code.decode_array(indices, coded[indices])

    decoded = benchmark(decode)
    assert np.array_equal(decoded, message)


def test_rlnc_decode_k32(benchmark):
    rng = RandomSource(5)
    messages = [bytes(rng.bytes_array(32).tobytes()) for _ in range(32)]

    def fill_decoder():
        src = RLNCEncoder(k=32, payload_length=32, messages=messages)
        sink = RLNCDecoder(k=32, payload_length=32)
        emit_rng = RandomSource(6)
        while not sink.is_complete():
            sink.receive(src.emit(emit_rng))
        return sink

    sink = benchmark(fill_decoder)
    assert sink.decode_messages() == messages


def test_channel_round_star_1024(benchmark):
    network = star(1024)
    channel = Channel(network, FaultConfig.receiver(0.3), rng=7)
    packet = MessagePacket(0)

    def round_():
        return channel.transmit({network.source: packet})

    result = benchmark(round_)
    assert result.round_index >= 0
