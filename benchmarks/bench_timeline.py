"""Flight-recorder overhead benchmark: recording must stay near-free.

``python benchmarks/bench_timeline.py [--scale smoke|full] [--output PATH]``
emits ``BENCH_timeline.json`` with the channel-round workload from
``bench_hotpaths`` timed three ways:

* ``bare``     — a ``Channel`` subclass whose round epilogue predates the
  flight recorder (no ``timeline.enabled`` read at all);
* ``disabled`` — the shipped ``Channel`` carrying ``NULL_TIMELINE``,
  i.e. what every run that never opts in pays: one attribute read and
  one branch per round;
* ``enabled``  — the shipped ``Channel`` with a bound
  ``TimelineRecorder`` (``every=1``), appending one bucket per round.

Two acceptance bars are enforced (exit 1 on violation):

* disabled overhead <= 1% of the bare baseline;
* enabled overhead <= 5%.

A third check asserts the recorder's observability invariant: canonical
report bytes from ``run_batch`` are identical with the recorder on vs
off once the scenario's own ``timeline`` opt-in entry (and hence the
cache key) is set aside — recording never changes the simulation. A
``memory_model`` entry reports the recorder's measured buffer footprint
at n=10^5 for PERFORMANCE.md.

The three legs are timed interleaved (best-of-N per leg, round-robin)
with the metrics registry off, so the timeline bars are not confounded
by telemetry counters or machine-load drift.

``pytest benchmarks/bench_timeline.py --benchmark-only
-o python_files='bench_*.py'`` runs the same measurement under
pytest-benchmark.
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.core import engine as _engine
from repro.core.engine import Channel, RoundResult
from repro.core.errors import SimulationError
from repro.core.faults import FaultConfig
from repro.core.packets import MessagePacket
from repro.runner import Scenario, expand_grid, run_batch
from repro.telemetry.metrics import METRICS
from repro.timeline import TimelineConfig, TimelineRecorder
from repro.topologies import random_graphs
from repro.util.rng import RandomSource

SCHEMA = "repro.bench_timeline/1"

#: the disabled path is one attribute read + branch: <= 1% of bare
DISABLED_OVERHEAD_BAR = 0.01

#: a live recorder appending every round may cost <= 5%
ENABLED_OVERHEAD_BAR = 0.05

_SCALES = {
    "smoke": {"rounds": 600, "repeats": 9, "n": 1024},
    "full": {"rounds": 2000, "repeats": 15, "n": 1024},
}

#: the byte-identity sweep: small but multi-seed, the store-canonical path
_IDENTITY_SCENARIOS = 8

#: the PERFORMANCE.md memory-model size
_MEMORY_MODEL_N = 100_000


class _BareChannel(Channel):
    """``Channel`` with the pre-flight-recorder round epilogue.

    ``_run_round`` below is the shipped body minus the ``if
    timeline.enabled:`` lines — the baseline the <=1% disabled bar is
    measured against. If ``Channel._run_round`` changes shape, this
    override must be updated to match (the consistency assertion in
    :func:`bench_channel_overhead` catches behavioural drift).
    """

    def _run_round(self, actions, resolver):
        n = self.network.n
        for b in actions:
            if not isinstance(b, int) or not 0 <= b < n:
                raise SimulationError(
                    f"broadcast action for invalid node {b!r} (n={n})"
                )
        result = RoundResult(round_index=self.round_index)
        counters = self.counters
        metrics_on = _engine._METRICS.enabled
        faults_before = counters.receiver_faults if metrics_on else 0
        counters.rounds += 1
        counters.broadcasts += len(actions)
        if actions:
            resolver(actions, result)
        self.round_index += 1
        if metrics_on:
            _engine._M_ROUNDS.inc()
            if actions:
                _engine._M_BROADCASTS.inc(len(actions))
                if result.deliveries:
                    _engine._M_DELIVERIES.inc(len(result.deliveries))
                if result.collision_receivers:
                    _engine._M_COLLISIONS.inc(len(result.collision_receivers))
                if result.faulty_senders:
                    _engine._M_SENDER_FAULTS.inc(len(result.faulty_senders))
                receiver_faults = counters.receiver_faults - faults_before
                if receiver_faults:
                    _engine._M_RECEIVER_FAULTS.inc(receiver_faults)
        return result


def _workload(rounds, n, seed=7):
    """The bench_hotpaths channel workload: sparse G(n, p), n/8 senders."""
    network = random_graphs.gnp(n, 16.0 / n, rng=seed)
    pick = RandomSource(seed)
    packet = MessagePacket(0)
    action_sets = [
        {v: packet for v in pick.sample(range(network.n), network.n // 8)}
        for _ in range(rounds)
    ]
    return network, action_sets


def _leg_run(channel_cls, network, action_sets, seed=7, record=False):
    """One timed pass: fresh channel (and recorder), every round sent."""
    channel = channel_cls(network, FaultConfig.receiver(0.1), rng=seed)
    if record:
        channel.timeline = TimelineRecorder(network.n, TimelineConfig(every=1))
    for actions in action_sets:
        channel.transmit(actions)
    if record:
        channel.timeline.finish()
    return channel


def _time_leg(channel_cls, network, action_sets, record=False):
    start = time.perf_counter()
    _leg_run(channel_cls, network, action_sets, record=record)
    return time.perf_counter() - start


def bench_channel_overhead(rounds, repeats, n, seed=7):
    """Best-of-``repeats`` seconds for bare / disabled / enabled legs."""
    network, action_sets = _workload(rounds, n, seed=seed)

    was_enabled = METRICS.enabled
    METRICS.enabled = False
    try:
        # behavioural sanity first: the bare override must produce the
        # exact same counters as the shipped channel — recording or not —
        # or the baseline is measuring a different simulation
        bare = _leg_run(_BareChannel, network, action_sets[:16], seed=seed)
        shipped = _leg_run(Channel, network, action_sets[:16], seed=seed)
        recording = _leg_run(
            Channel, network, action_sets[:16], seed=seed, record=True
        )
        assert bare.counters.as_dict() == shipped.counters.as_dict(), (
            "_BareChannel diverged from Channel; update its _run_round copy"
        )
        assert shipped.counters.as_dict() == recording.counters.as_dict(), (
            "a bound TimelineRecorder changed the simulation"
        )
        assert len(recording.timeline) == 16

        best = {"bare": float("inf"), "disabled": float("inf"),
                "enabled": float("inf")}
        for _ in range(repeats):
            best["bare"] = min(
                best["bare"], _time_leg(_BareChannel, network, action_sets)
            )
            best["disabled"] = min(
                best["disabled"], _time_leg(Channel, network, action_sets)
            )
            best["enabled"] = min(
                best["enabled"],
                _time_leg(Channel, network, action_sets, record=True),
            )
    finally:
        METRICS.enabled = was_enabled

    def leg(name):
        seconds = best[name]
        overhead = (seconds - best["bare"]) / best["bare"]
        return {
            "seconds": round(seconds, 6),
            "rounds_per_sec": round(rounds / seconds, 2),
            "overhead_fraction": round(max(0.0, overhead), 4),
        }

    return {
        "name": "channel_round_overhead",
        "rounds": rounds,
        "repeats": repeats,
        "n": network.n,
        "m": network.edge_count,
        "broadcasters": network.n // 8,
        "legs": {name: leg(name) for name in ("bare", "disabled", "enabled")},
        "bars": {
            "disabled": DISABLED_OVERHEAD_BAR,
            "enabled": ENABLED_OVERHEAD_BAR,
        },
    }


def check_byte_identity():
    """Canonical report bytes with the recorder on vs off.

    The recorded scenario differs from the plain one only in its own
    ``timeline`` opt-in entry (which moves the cache key); everything
    the simulation computed must be byte-identical. Raises
    AssertionError on any other difference.
    """
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 32},
        faults=FaultConfig.receiver(0.3),
    )
    plain = expand_grid(base, seeds=range(_IDENTITY_SCENARIOS))
    recorded = [
        scenario.with_(timeline=TimelineConfig(every=1)) for scenario in plain
    ]
    off = run_batch(plain)
    on = run_batch(recorded)
    buckets = 0
    for report_off, report_on in zip(off, on):
        assert report_off.timeline is None
        assert report_on.timeline is not None
        buckets += len(report_on.timeline["columns"]["round_start"])
        a = json.loads(report_off.to_json(canonical=True))
        b = json.loads(report_on.to_json(canonical=True))
        b["scenario"].pop("timeline")
        a.pop("cache_key")
        b.pop("cache_key")
        assert a == b, (
            f"recording changed canonical report bytes for seed "
            f"{a['scenario']['seed']}"
        )
    return {
        "name": "byte_identity",
        "scenarios": len(plain),
        "identical": True,
        "buckets_recorded": buckets,
    }


def measure_memory_model(n=_MEMORY_MODEL_N):
    """Measured recorder buffer footprint at large n (PERFORMANCE.md)."""
    recorder = TimelineRecorder(n, TimelineConfig())
    per_node = (
        recorder.first_delivery.nbytes + recorder._informed_mask.nbytes
    )
    return {
        "name": "memory_model",
        "n": n,
        "per_node_bytes": per_node,
        "bucket_row_bytes": recorder._rows.nbytes // len(recorder._rows),
        "initial_bucket_capacity": len(recorder._rows),
        "total_initial_bytes": per_node + recorder._rows.nbytes,
    }


def run_timeline_benchmarks(scale="smoke"):
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {scale!r}")
    sizes = _SCALES[scale]
    overhead = bench_channel_overhead(
        sizes["rounds"], sizes["repeats"], sizes["n"]
    )
    identity = check_byte_identity()
    memory = measure_memory_model()
    return {
        "schema": SCHEMA,
        "scale": scale,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": [overhead, identity, memory],
    }


def _gate(report):
    """Print the verdicts; return the exit status."""
    overhead = report["results"][0]
    legs = overhead["legs"]
    for name in ("bare", "disabled", "enabled"):
        leg = legs[name]
        print(
            f"channel_rounds {name:>8}: {leg['rounds_per_sec']:>10.2f} "
            f"rounds/s ({leg['overhead_fraction'] * 100:.2f}% overhead)"
        )
    identity = report["results"][1]
    print(
        f"byte_identity: {identity['scenarios']} scenarios identical with "
        f"the recorder on/off ({identity['buckets_recorded']} buckets "
        "recorded)"
    )
    memory = report["results"][2]
    print(
        f"memory_model: n={memory['n']} costs {memory['per_node_bytes']} "
        f"per-node bytes + {memory['bucket_row_bytes']} B/bucket"
    )
    failed = False
    if legs["disabled"]["overhead_fraction"] > DISABLED_OVERHEAD_BAR:
        print(
            f"FAIL: disabled recorder costs "
            f"{legs['disabled']['overhead_fraction'] * 100:.2f}%, above the "
            f"{DISABLED_OVERHEAD_BAR * 100:.0f}% bar"
        )
        failed = True
    if legs["enabled"]["overhead_fraction"] > ENABLED_OVERHEAD_BAR:
        print(
            f"FAIL: enabled recorder costs "
            f"{legs['enabled']['overhead_fraction'] * 100:.2f}%, above the "
            f"{ENABLED_OVERHEAD_BAR * 100:.0f}% bar"
        )
        failed = True
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--output", default="BENCH_timeline.json")
    args = parser.parse_args(argv)

    report = run_timeline_benchmarks(scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    status = _gate(report)
    print(f"wrote {args.output}")
    return status


# -- pytest-benchmark wrappers ----------------------------------------------


def test_timeline_overhead(benchmark, repro_scale):
    sizes = _SCALES[repro_scale]
    result = benchmark.pedantic(
        lambda: bench_channel_overhead(
            sizes["rounds"], sizes["repeats"], sizes["n"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["result"] = result
    legs = result["legs"]
    assert legs["disabled"]["overhead_fraction"] <= DISABLED_OVERHEAD_BAR
    assert legs["enabled"]["overhead_fraction"] <= ENABLED_OVERHEAD_BAR


def test_byte_identity(benchmark):
    result = benchmark.pedantic(check_byte_identity, rounds=1, iterations=1)
    benchmark.extra_info["result"] = result
    assert result["identical"]
    assert result["buckets_recorded"] >= 1


if __name__ == "__main__":
    sys.exit(main())
